#include "proxy/client_proxy.h"

#include <gtest/gtest.h>

#include "coherence/delta_atomic.h"
#include "invalidation/pipeline.h"

namespace speedkit::proxy {
namespace {

constexpr char kRecordUrl[] = "https://shop.example.com/api/records/p1";

// Harness wiring a full server side with an instant network so latency
// does not obscure protocol behaviour (separate tests cover latency).
class ClientProxyTest : public ::testing::Test {
 protected:
  ClientProxyTest()
      : network_(sim::NetworkConfig::Instant(), Pcg32(1)),
        events_(&clock_),
        cdn_(2, 0),
        protocol_(SketchConfig()),
        ttl_policy_(Duration::Seconds(60)),
        origin_(origin::OriginConfig{}, &clock_, &store_, &ttl_policy_,
                &protocol_.publication()),
        pipeline_(PipelineConfig(), &clock_, &events_, &cdn_, &protocol_,
                  Pcg32(2)) {
    // The origin's expiry book knows which copies are outstanding; the
    // pipeline must size sketch horizons from it.
    pipeline_.UseExpiryBook(&origin_.expiry_book());
    pipeline_.AttachTo(&store_);
    store_.Put("p1", {{"price", 10.0}}, clock_.Now());
    // The initial insert put p1 into the sketch (purges in flight); settle
    // past that horizon so tests start from a quiescent system.
    events_.RunUntil(clock_.Now() + Duration::Seconds(1));
  }

  static invalidation::PipelineConfig PipelineConfig() {
    invalidation::PipelineConfig config;
    config.purge_median_delay = Duration::Millis(50);
    config.purge_log_sigma = 0.0;
    return config;
  }

  static coherence::CoherenceConfig SketchConfig() {
    coherence::CoherenceConfig config;
    config.sketch_capacity = 1000;
    config.sketch_fpr = 0.001;
    return config;
  }

  ProxyConfig SpeedKitConfig() {
    ProxyConfig pc;
    pc.sketch_refresh_interval = Duration::Seconds(10);
    pc.device_overhead = Duration::Zero();
    return pc;
  }

  ClientProxy MakeProxy(const ProxyConfig& pc, uint64_t id = 1) {
    ProxyDeps deps;
    deps.clock = &clock_;
    deps.network = &network_;
    deps.cdn = &cdn_;
    deps.origin = &origin_;
    deps.coherence = &protocol_;
    return ClientProxy(pc, id, deps);
  }

  void WriteP1(double price) {
    store_.Update("p1", {{"price", price}}, clock_.Now());
  }

  void Advance(Duration d) { events_.RunUntil(clock_.Now() + d); }

  sim::SimClock clock_;
  sim::Network network_;
  sim::EventQueue events_;
  cache::Cdn cdn_;
  coherence::DeltaAtomicProtocol protocol_;
  storage::ObjectStore store_;
  ttl::FixedTtlPolicy ttl_policy_;
  origin::OriginServer origin_;
  invalidation::InvalidationPipeline pipeline_;
};

TEST_F(ClientProxyTest, FirstFetchComesFromOrigin) {
  ClientProxy proxy = MakeProxy(SpeedKitConfig());
  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_TRUE(r.response.ok());
  EXPECT_EQ(r.source, ServedFrom::kOrigin);
  EXPECT_EQ(proxy.stats().origin_fetches, 1u);
}

TEST_F(ClientProxyTest, SecondFetchHitsBrowserCache) {
  ClientProxy proxy = MakeProxy(SpeedKitConfig());
  proxy.Fetch(kRecordUrl);
  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_EQ(r.source, ServedFrom::kBrowserCache);
  EXPECT_EQ(proxy.stats().browser_hits, 1u);
}

TEST_F(ClientProxyTest, SecondClientOnSameEdgeHitsEdgeCache) {
  ClientProxy a = MakeProxy(SpeedKitConfig(), 1);
  a.Fetch(kRecordUrl);
  // Find a client id routed to the same edge as client 1.
  uint64_t same_edge_id = 2;
  while (cdn_.RouteFor(same_edge_id) != cdn_.RouteFor(1)) ++same_edge_id;
  ClientProxy b = MakeProxy(SpeedKitConfig(), same_edge_id);
  FetchResult r = b.Fetch(kRecordUrl);
  EXPECT_EQ(r.source, ServedFrom::kEdgeCache);
}

TEST_F(ClientProxyTest, ClientOnOtherEdgeMissesEdgeCache) {
  ClientProxy a = MakeProxy(SpeedKitConfig(), 1);
  a.Fetch(kRecordUrl);
  uint64_t other_edge_id = 2;
  while (cdn_.RouteFor(other_edge_id) == cdn_.RouteFor(1)) ++other_edge_id;
  ClientProxy b = MakeProxy(SpeedKitConfig(), other_edge_id);
  EXPECT_EQ(b.Fetch(kRecordUrl).source, ServedFrom::kOrigin);
}

TEST_F(ClientProxyTest, SketchFlagsWriteAndForcesRevalidation) {
  ClientProxy proxy = MakeProxy(SpeedKitConfig());
  proxy.Fetch(kRecordUrl);  // v1 cached everywhere
  WriteP1(11.0);            // v2; key enters sketch
  Advance(Duration::Seconds(10));  // sketch refresh due; purges landed

  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_TRUE(r.sketch_bypass);
  EXPECT_EQ(r.response.object_version, 2u);
  EXPECT_EQ(proxy.stats().sketch_bypasses, 1u);
  // The browser copy was v1, so the conditional got a full 200 back.
  EXPECT_EQ(proxy.stats().revalidations_200, 1u);
}

TEST_F(ClientProxyTest, UnchangedFlaggedKeyRevalidatesWith304) {
  ClientProxy proxy = MakeProxy(SpeedKitConfig());
  proxy.Fetch(kRecordUrl);  // v1
  WriteP1(11.0);            // v2
  Advance(Duration::Seconds(10));
  proxy.Fetch(kRecordUrl);  // revalidated to v2

  // Key is still in the sketch (horizon = served TTL); next fetch must
  // revalidate again — and the copy is current now, so it's a cheap 304.
  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_TRUE(r.sketch_bypass);
  EXPECT_TRUE(r.revalidated);
  EXPECT_EQ(r.response.object_version, 2u);
  EXPECT_EQ(proxy.stats().revalidations_304, 1u);
}

TEST_F(ClientProxyTest, WithoutSketchServesStaleUntilTtl) {
  ProxyConfig pc = SpeedKitConfig();
  pc.use_sketch = false;
  ClientProxy proxy = MakeProxy(pc);
  proxy.Fetch(kRecordUrl);  // v1, TTL 60s
  WriteP1(11.0);            // v2
  Advance(Duration::Seconds(10));
  FetchResult r = proxy.Fetch(kRecordUrl);
  // Expiration-based caching alone: the stale v1 is served.
  EXPECT_EQ(r.response.object_version, 1u);
  EXPECT_EQ(r.source, ServedFrom::kBrowserCache);
}

TEST_F(ClientProxyTest, SketchRefreshHappensEveryDelta) {
  ClientProxy proxy = MakeProxy(SpeedKitConfig());  // delta = 10s
  proxy.Fetch(kRecordUrl);
  EXPECT_EQ(proxy.stats().sketch_refreshes, 1u);
  proxy.Fetch(kRecordUrl);  // within delta: no refresh
  EXPECT_EQ(proxy.stats().sketch_refreshes, 1u);
  Advance(Duration::Seconds(10));
  proxy.Fetch(kRecordUrl);
  EXPECT_EQ(proxy.stats().sketch_refreshes, 2u);
  EXPECT_GT(proxy.stats().sketch_bytes, 0u);
}

TEST_F(ClientProxyTest, StaleBrowserEntryRevalidates) {
  ClientProxy proxy = MakeProxy(SpeedKitConfig());
  proxy.Fetch(kRecordUrl);
  // Past TTL *and* the stale-while-revalidate window (TTL + 50% = 90s);
  // the key never entered the sketch.
  Advance(Duration::Seconds(91));
  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_TRUE(r.revalidated);
  EXPECT_EQ(r.response.object_version, 1u);
  EXPECT_EQ(proxy.stats().revalidations_304, 1u);
  // Refreshed entry serves from browser again.
  EXPECT_EQ(proxy.Fetch(kRecordUrl).source, ServedFrom::kBrowserCache);
}

TEST_F(ClientProxyTest, VanillaModeSkipsCdnAndSketch) {
  ProxyConfig pc;
  pc.enabled = false;
  ClientProxy proxy = MakeProxy(pc);
  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_EQ(r.source, ServedFrom::kOrigin);
  EXPECT_EQ(proxy.stats().sketch_refreshes, 0u);
  // Nothing was stored at the edge.
  EXPECT_EQ(cdn_.TotalStats().stores, 0u);
  // Browser cache still works.
  EXPECT_EQ(proxy.Fetch(kRecordUrl).source, ServedFrom::kBrowserCache);
}

TEST_F(ClientProxyTest, OfflineModeServesStaleDuringOutage) {
  ClientProxy proxy = MakeProxy(SpeedKitConfig());
  proxy.Fetch(kRecordUrl);
  Advance(Duration::Seconds(91));  // browser copy past TTL and SWR window
  origin_.set_available(false);
  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_EQ(r.source, ServedFrom::kOfflineCache);
  EXPECT_TRUE(r.response.ok());
  EXPECT_EQ(proxy.stats().offline_serves, 1u);
}

TEST_F(ClientProxyTest, OutageWithoutOfflineModeErrors) {
  ProxyConfig pc = SpeedKitConfig();
  pc.offline_mode = false;
  ClientProxy proxy = MakeProxy(pc);
  proxy.Fetch(kRecordUrl);
  Advance(Duration::Seconds(91));  // past TTL + SWR window
  origin_.set_available(false);
  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_EQ(r.response.status_code, 503);
  EXPECT_EQ(proxy.stats().errors, 1u);
}

TEST_F(ClientProxyTest, OutageWithColdCacheErrorsEvenInOfflineMode) {
  ClientProxy proxy = MakeProxy(SpeedKitConfig());
  origin_.set_available(false);
  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_EQ(r.response.status_code, 503);
}

TEST_F(ClientProxyTest, MalformedUrlIsClientError) {
  ClientProxy proxy = MakeProxy(SpeedKitConfig());
  FetchResult r = proxy.Fetch("not a url");
  EXPECT_EQ(r.response.status_code, 400);
  EXPECT_EQ(r.source, ServedFrom::kError);
}

TEST_F(ClientProxyTest, PurgedEdgeServesFreshAfterWrite) {
  ClientProxy a = MakeProxy(SpeedKitConfig(), 1);
  a.Fetch(kRecordUrl);  // v1 at edge
  WriteP1(11.0);
  Advance(Duration::Seconds(1));  // purge done (50ms)
  uint64_t same_edge_id = 2;
  while (cdn_.RouteFor(same_edge_id) != cdn_.RouteFor(1)) ++same_edge_id;
  ClientProxy b = MakeProxy(SpeedKitConfig(), same_edge_id);
  FetchResult r = b.Fetch(kRecordUrl);
  EXPECT_EQ(r.response.object_version, 2u);
  EXPECT_EQ(r.source, ServedFrom::kOrigin);  // edge was purged
}

TEST_F(ClientProxyTest, BytesAccountingSplitsCacheAndNetwork) {
  ClientProxy proxy = MakeProxy(SpeedKitConfig());
  proxy.Fetch(kRecordUrl);
  uint64_t network_after_first = proxy.stats().bytes_over_network;
  EXPECT_GT(network_after_first, 0u);
  proxy.Fetch(kRecordUrl);
  EXPECT_EQ(proxy.stats().bytes_over_network, network_after_first);
  EXPECT_GT(proxy.stats().bytes_from_browser_cache, 0u);
}

TEST_F(ClientProxyTest, LatencyReflectsNetworkDistance) {
  sim::NetworkConfig net_config;  // real distances, no jitter
  net_config.client_edge = sim::LinkSpec{Duration::Millis(20), 0.0, 0.0};
  net_config.client_origin = sim::LinkSpec{Duration::Millis(100), 0.0, 0.0};
  net_config.edge_origin = sim::LinkSpec{Duration::Millis(80), 0.0, 0.0};
  sim::Network net(net_config, Pcg32(1));
  ProxyConfig pc = SpeedKitConfig();
  ProxyDeps deps;
  deps.clock = &clock_;
  deps.network = &net;
  deps.cdn = &cdn_;
  deps.origin = &origin_;
  deps.coherence = &protocol_;
  ClientProxy proxy(pc, 1, deps);

  // Miss: client->edge->origin = 20 + 80 ms plus the origin's record
  // render time (8 ms); the due sketch refresh (20 ms to the edge)
  // overlaps the in-flight request.
  FetchResult miss = proxy.Fetch(kRecordUrl);
  EXPECT_EQ(miss.latency,
            Duration::Millis(100) + origin::OriginConfig{}.record_render_time);
  // Browser hit: free.
  FetchResult hit = proxy.Fetch(kRecordUrl);
  EXPECT_EQ(hit.latency, Duration::Zero());

  // Edge hit for a same-edge neighbour: 20 ms; the sketch refresh (also
  // 20 ms) overlaps it.
  uint64_t same_edge_id = 2;
  while (cdn_.RouteFor(same_edge_id) != cdn_.RouteFor(1)) ++same_edge_id;
  ClientProxy b(pc, same_edge_id, deps);
  FetchResult edge_hit = b.Fetch(kRecordUrl);
  EXPECT_EQ(edge_hit.source, ServedFrom::kEdgeCache);
  EXPECT_EQ(edge_hit.latency, Duration::Millis(20));
}

TEST_F(ClientProxyTest, GdprBlockRendersOnDevice) {
  personalization::PiiVault vault(777);
  vault.Put("name", "Ada");
  vault.Put("cart", "2 items");
  personalization::BoundaryAuditor auditor;
  auditor.RegisterVault(vault);

  ProxyConfig pc = SpeedKitConfig();
  ProxyDeps deps;
  deps.clock = &clock_;
  deps.network = &network_;
  deps.cdn = &cdn_;
  deps.origin = &origin_;
  deps.coherence = &protocol_;
  deps.auditor = &auditor;
  ClientProxy proxy(pc, 777, deps);
  proxy.AttachVault(&vault);

  personalization::PageTemplate page;
  page.url = "https://shop.example.com/pages/product";
  personalization::DynamicBlock block{"cart", personalization::BlockScope::kUser,
                                      2048};
  personalization::Segmenter segmenter(10);
  BlockResult r = proxy.FetchBlock(page, block, segmenter);
  EXPECT_TRUE(r.rendered_on_device);
  EXPECT_NE(r.content.find("Ada"), std::string::npos);
  EXPECT_EQ(auditor.violations(), 0u);
}

TEST_F(ClientProxyTest, LegacyBlockLeaksIdentity) {
  personalization::PiiVault vault(777);
  personalization::BoundaryAuditor auditor;
  auditor.RegisterVault(vault);

  ProxyConfig pc = SpeedKitConfig();
  pc.gdpr_mode = false;
  ProxyDeps deps;
  deps.clock = &clock_;
  deps.network = &network_;
  deps.cdn = &cdn_;
  deps.origin = &origin_;
  deps.coherence = &protocol_;
  deps.auditor = &auditor;
  ClientProxy proxy(pc, 777, deps);
  proxy.AttachVault(&vault);

  personalization::PageTemplate page;
  page.url = "https://shop.example.com/pages/product";
  personalization::DynamicBlock block{"cart", personalization::BlockScope::kUser,
                                      2048};
  personalization::Segmenter segmenter(10);
  BlockResult r = proxy.FetchBlock(page, block, segmenter);
  EXPECT_FALSE(r.rendered_on_device);
  EXPECT_GT(auditor.violations(), 0u);  // user id crossed the boundary
}

TEST_F(ClientProxyTest, SegmentBlocksShareCacheAcrossSameSegmentUsers) {
  personalization::Segmenter segmenter(1);  // everyone in one segment
  personalization::PageTemplate page;
  page.url = "https://shop.example.com/pages/home";
  personalization::DynamicBlock block{"recs",
                                      personalization::BlockScope::kSegment,
                                      2048};
  ClientProxy a = MakeProxy(SpeedKitConfig(), 1);
  a.FetchBlock(page, block, segmenter);
  uint64_t same_edge_id = 2;
  while (cdn_.RouteFor(same_edge_id) != cdn_.RouteFor(1)) ++same_edge_id;
  ClientProxy b = MakeProxy(SpeedKitConfig(), same_edge_id);
  BlockResult r = b.FetchBlock(page, block, segmenter);
  EXPECT_EQ(r.source, ServedFrom::kEdgeCache);
}

TEST_F(ClientProxyTest, MalformedUrlCountsAsRequest) {
  ClientProxy proxy = MakeProxy(SpeedKitConfig());
  proxy.Fetch("not a url");
  EXPECT_EQ(proxy.stats().requests, 1u);
  EXPECT_EQ(proxy.stats().errors, 1u);
  EXPECT_EQ(proxy.stats().ServedTotal(), proxy.stats().requests);
}

TEST_F(ClientProxyTest, SwrBackgroundTrafficStaysOutOfServeBuckets) {
  ClientProxy proxy = MakeProxy(SpeedKitConfig());
  proxy.Fetch(kRecordUrl);  // v1, TTL 60s
  // Past TTL but inside the SWR window (TTL + 50% = 90s), sketch-clean.
  Advance(Duration::Seconds(61));
  uint64_t network_bytes_before = proxy.stats().bytes_over_network;
  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_EQ(r.source, ServedFrom::kBrowserCache);

  const ProxyStats& s = proxy.stats();
  EXPECT_EQ(s.swr_serves, 1u);
  EXPECT_EQ(s.requests, 2u);
  // The background revalidation must not masquerade as page traffic.
  EXPECT_EQ(s.origin_fetches, 1u);  // only the initial cold fetch
  EXPECT_EQ(s.edge_hits, 0u);
  EXPECT_EQ(s.bytes_over_network, network_bytes_before);
  EXPECT_EQ(s.background_revalidations, 1u);
  EXPECT_EQ(s.background_304s, 1u);  // nothing changed: cheap 304
  EXPECT_GT(s.background_bytes, 0u);
  EXPECT_EQ(s.ServedTotal(), s.requests);
}

TEST_F(ClientProxyTest, StatsReconcileOverMixedWorkload) {
  ClientProxy proxy = MakeProxy(SpeedKitConfig());
  proxy.Fetch(kRecordUrl);    // cold: origin fetch
  proxy.Fetch(kRecordUrl);    // fresh: browser hit
  proxy.Fetch("no-scheme");   // malformed: error
  Advance(Duration::Seconds(61));
  proxy.Fetch(kRecordUrl);    // expired but within SWR window: swr serve
  Advance(Duration::Seconds(91));
  origin_.set_available(false);
  proxy.Fetch(kRecordUrl);    // outage, copy on device: offline serve
  // Outage and never seen: hard error.
  proxy.Fetch("https://shop.example.com/api/records/p999");
  origin_.set_available(true);
  proxy.Fetch(kRecordUrl);    // revalidates the offline-served copy

  const ProxyStats& s = proxy.stats();
  EXPECT_EQ(s.requests, 7u);
  EXPECT_EQ(s.ServedTotal(), s.requests);
  EXPECT_EQ(s.background_revalidations,
            s.background_304s + s.background_200s + s.background_errors);
}

TEST_F(ClientProxyTest, BackgroundRevalidationFailureCountsAsBackgroundError) {
  ClientProxy proxy = MakeProxy(SpeedKitConfig());
  proxy.Fetch(kRecordUrl);
  Advance(Duration::Seconds(61));  // SWR window
  origin_.set_available(false);
  // The foreground serve succeeds from the stale copy; the background
  // revalidation hits the dead origin and must not bump `errors`.
  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_TRUE(r.response.ok());
  const ProxyStats& s = proxy.stats();
  EXPECT_EQ(s.swr_serves, 1u);
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(s.background_errors, 1u);
  EXPECT_EQ(s.ServedTotal(), s.requests);
}

TEST_F(ClientProxyTest, StaticBlockFetchesLikeAsset) {
  personalization::Segmenter segmenter(4);
  personalization::PageTemplate page;
  page.url = "https://shop.example.com/pages/home";
  personalization::DynamicBlock block{"banner",
                                      personalization::BlockScope::kStatic,
                                      1024};
  ClientProxy proxy = MakeProxy(SpeedKitConfig());
  BlockResult first = proxy.FetchBlock(page, block, segmenter);
  EXPECT_EQ(first.source, ServedFrom::kOrigin);
  BlockResult second = proxy.FetchBlock(page, block, segmenter);
  EXPECT_EQ(second.source, ServedFrom::kBrowserCache);
}

}  // namespace
}  // namespace speedkit::proxy
