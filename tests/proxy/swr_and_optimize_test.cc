// Stale-while-revalidate and asset-optimization behaviour of the client
// proxy, including the coherence argument that makes SWR safe under the
// sketch: an invalidated key is flagged and never takes the SWR path.
#include <gtest/gtest.h>

#include "coherence/delta_atomic.h"
#include "invalidation/pipeline.h"
#include "proxy/client_proxy.h"

namespace speedkit::proxy {
namespace {

constexpr char kRecordUrl[] = "https://shop.example.com/api/records/p1";
constexpr char kAssetUrl[] = "https://shop.example.com/assets/hero.jpg";

coherence::CoherenceConfig SketchCoherenceConfig() {
  coherence::CoherenceConfig config;
  config.sketch_capacity = 1000;
  config.sketch_fpr = 0.001;
  return config;
}

class SwrTest : public ::testing::Test {
 protected:
  SwrTest()
      : network_(sim::NetworkConfig::Instant(), Pcg32(1)),
        events_(&clock_),
        cdn_(2, 0),
        protocol_(SketchCoherenceConfig()),
        ttl_policy_(Duration::Seconds(60)),  // SWR window: +30s
        origin_(origin::OriginConfig{}, &clock_, &store_, &ttl_policy_,
                &protocol_.publication()),
        pipeline_(MakePipelineConfig(), &clock_, &events_, &cdn_, &protocol_,
                  Pcg32(2)) {
    pipeline_.UseExpiryBook(&origin_.expiry_book());
    pipeline_.AttachTo(&store_);
    store_.Put("p1", {{"price", 10.0}}, clock_.Now());
    events_.RunUntil(clock_.Now() + Duration::Seconds(1));
  }

  static invalidation::PipelineConfig MakePipelineConfig() {
    invalidation::PipelineConfig config;
    config.purge_log_sigma = 0.0;
    return config;
  }

  ProxyConfig Config() {
    ProxyConfig pc;
    pc.sketch_refresh_interval = Duration::Seconds(10);
    pc.device_overhead = Duration::Zero();
    return pc;
  }

  ClientProxy MakeProxy(const ProxyConfig& pc, uint64_t id = 1) {
    ProxyDeps deps;
    deps.clock = &clock_;
    deps.network = &network_;
    deps.cdn = &cdn_;
    deps.origin = &origin_;
    deps.coherence = &protocol_;
    return ClientProxy(pc, id, deps);
  }

  void Advance(Duration d) { events_.RunUntil(clock_.Now() + d); }

  sim::SimClock clock_;
  sim::Network network_;
  sim::EventQueue events_;
  cache::Cdn cdn_;
  coherence::DeltaAtomicProtocol protocol_;
  storage::ObjectStore store_;
  ttl::FixedTtlPolicy ttl_policy_;
  origin::OriginServer origin_;
  invalidation::InvalidationPipeline pipeline_;
  sketch::CacheSketch& sketch_ = *protocol_.sketch();
};

TEST_F(SwrTest, ExpiredButUnchangedEntryServedInstantly) {
  ClientProxy proxy = MakeProxy(Config());
  proxy.Fetch(kRecordUrl);
  Advance(Duration::Seconds(70));  // TTL (60) passed, SWR window (30) open
  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_EQ(r.source, ServedFrom::kBrowserCache);
  EXPECT_EQ(r.response.object_version, 1u);
  EXPECT_EQ(proxy.stats().swr_serves, 1u);
  EXPECT_EQ(proxy.stats().background_revalidations, 1u);
}

TEST_F(SwrTest, BackgroundRevalidationRestoresFreshness) {
  ClientProxy proxy = MakeProxy(Config());
  proxy.Fetch(kRecordUrl);
  Advance(Duration::Seconds(70));
  proxy.Fetch(kRecordUrl);  // SWR serve + background 304
  // The background revalidation refreshed the entry: a plain fresh hit.
  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_EQ(r.source, ServedFrom::kBrowserCache);
  EXPECT_EQ(proxy.stats().swr_serves, 1u);  // no second SWR serve
  EXPECT_EQ(proxy.stats().browser_hits, 1u);
}

TEST_F(SwrTest, FlaggedKeyNeverTakesSwrPath) {
  ClientProxy proxy = MakeProxy(Config());
  proxy.Fetch(kRecordUrl);  // v1
  Advance(Duration::Seconds(70));  // entry in SWR window
  store_.Update("p1", {{"price", 12.0}}, clock_.Now());  // v2 -> flagged
  Advance(Duration::Seconds(10));  // refresh due; purges done
  FetchResult r = proxy.Fetch(kRecordUrl);
  // Correctness over speed: the flagged key is revalidated, not SWR-served.
  EXPECT_TRUE(r.sketch_bypass);
  EXPECT_EQ(r.response.object_version, 2u);
  EXPECT_EQ(proxy.stats().swr_serves, 0u);
}

TEST_F(SwrTest, BeyondSwrWindowRevalidatesOnCriticalPath) {
  ClientProxy proxy = MakeProxy(Config());
  proxy.Fetch(kRecordUrl);
  Advance(Duration::Seconds(95));  // past TTL + SWR
  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_TRUE(r.revalidated);
  EXPECT_EQ(proxy.stats().swr_serves, 0u);
}

TEST_F(SwrTest, SwrDisabledByConfig) {
  ProxyConfig pc = Config();
  pc.stale_while_revalidate = false;
  ClientProxy proxy = MakeProxy(pc);
  proxy.Fetch(kRecordUrl);
  Advance(Duration::Seconds(70));
  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_TRUE(r.revalidated);
  EXPECT_EQ(proxy.stats().swr_serves, 0u);
}

TEST_F(SwrTest, SwrRespectsDeltaAtomicityViaExpiryBook) {
  // The served copy can live until TTL+SWR, so the sketch must hold the
  // key at least that long after a write.
  ClientProxy proxy = MakeProxy(Config());
  proxy.Fetch(kRecordUrl);  // copies out until t+90s
  store_.Update("p1", {{"price", 11.0}}, clock_.Now());
  std::string key = http::Url::Parse(kRecordUrl)->CacheKey();
  sketch_.ExpireUntil(clock_.Now() + Duration::Seconds(89));
  EXPECT_TRUE(sketch_.Contains(key));
  sketch_.ExpireUntil(clock_.Now() + Duration::Seconds(91));
  EXPECT_FALSE(sketch_.Contains(key));
}

TEST_F(SwrTest, AssetRequestsRewrittenToOptimizedVariant) {
  ClientProxy proxy = MakeProxy(Config());
  FetchResult r = proxy.Fetch(kAssetUrl);
  ASSERT_TRUE(r.response.ok());
  EXPECT_NE(r.response.body.find("asset-optimized:"), std::string::npos);
  size_t optimized_size = r.response.body.size();
  EXPECT_LT(optimized_size, origin::OriginConfig{}.asset_bytes);
  EXPECT_NEAR(static_cast<double>(optimized_size),
              origin::OriginConfig{}.asset_bytes *
                  origin::OriginConfig{}.optimized_asset_factor,
              16.0);
}

TEST_F(SwrTest, OptimizedVariantIsCachedUnderItsOwnKey) {
  ClientProxy proxy = MakeProxy(Config());
  proxy.Fetch(kAssetUrl);
  FetchResult r = proxy.Fetch(kAssetUrl);
  EXPECT_EQ(r.source, ServedFrom::kBrowserCache);
  EXPECT_NE(r.response.body.find("asset-optimized:"), std::string::npos);
}

TEST_F(SwrTest, OptimizationOffFetchesOriginal) {
  ProxyConfig pc = Config();
  pc.optimize_assets = false;
  ClientProxy proxy = MakeProxy(pc);
  FetchResult r = proxy.Fetch(kAssetUrl);
  ASSERT_TRUE(r.response.ok());
  EXPECT_EQ(r.response.body.find("asset-optimized:"), std::string::npos);
  EXPECT_EQ(r.response.body.size(), origin::OriginConfig{}.asset_bytes);
}

TEST_F(SwrTest, NonAssetUrlsNeverRewritten) {
  ClientProxy proxy = MakeProxy(Config());
  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_EQ(r.response.body.find("skopt"), std::string::npos);
  // Cache key is the original record URL.
  EXPECT_NE(proxy.browser_cache()
                .Lookup(http::Url::Parse(kRecordUrl)->CacheKey(),
                        clock_.Now())
                .entry,
            nullptr);
}

TEST_F(SwrTest, DisabledProxyDoesNotRewrite) {
  ProxyConfig pc;
  pc.enabled = false;
  ClientProxy proxy = MakeProxy(pc);
  FetchResult r = proxy.Fetch(kAssetUrl);
  ASSERT_TRUE(r.response.ok());
  EXPECT_EQ(r.response.body.find("asset-optimized:"), std::string::npos);
}

}  // namespace
}  // namespace speedkit::proxy
