// Degraded-mode behaviour of the client proxy under injected faults:
// timeouts + bounded retries, pass-through reroute when the edge path is
// unreachable, stale-if-error at the edge, and the offline cache as the
// last resort — with the stats reconciliation invariant intact throughout.
#include <gtest/gtest.h>

#include <memory>

#include "coherence/delta_atomic.h"
#include "invalidation/pipeline.h"
#include "proxy/client_proxy.h"
#include "sim/fault_schedule.h"

namespace speedkit::proxy {
namespace {

constexpr char kRecordUrl[] = "https://shop.example.com/api/records/p1";

coherence::CoherenceConfig SketchCoherenceConfig() {
  coherence::CoherenceConfig config;
  config.sketch_capacity = 1000;
  config.sketch_fpr = 0.001;
  return config;
}


// Same harness as client_proxy_test, plus a fault schedule the tests can
// arm on the network. The harness settles 1s, so traffic starts at t=1s.
class DegradedModeTest : public ::testing::Test {
 protected:
  DegradedModeTest()
      : network_(sim::NetworkConfig::Instant(), Pcg32(1)),
        events_(&clock_),
        cdn_(2, 0),
        protocol_(SketchCoherenceConfig()),
        ttl_policy_(Duration::Seconds(60)),
        origin_(origin::OriginConfig{}, &clock_, &store_, &ttl_policy_,
                &protocol_.publication()),
        pipeline_(PipelineConfig(), &clock_, &events_, &cdn_, &protocol_,
                  Pcg32(2)) {
    pipeline_.UseExpiryBook(&origin_.expiry_book());
    pipeline_.AttachTo(&store_);
    store_.Put("p1", {{"price", 10.0}}, clock_.Now());
    events_.RunUntil(clock_.Now() + Duration::Seconds(1));
  }

  static invalidation::PipelineConfig PipelineConfig() {
    invalidation::PipelineConfig config;
    config.purge_median_delay = Duration::Millis(50);
    config.purge_log_sigma = 0.0;
    return config;
  }

  ProxyConfig SpeedKitConfig() {
    ProxyConfig pc;
    pc.sketch_refresh_interval = Duration::Seconds(10);
    pc.device_overhead = Duration::Zero();
    return pc;
  }

  ClientProxy MakeProxy(const ProxyConfig& pc, uint64_t id = 1) {
    ProxyDeps deps;
    deps.clock = &clock_;
    deps.network = &network_;
    deps.cdn = &cdn_;
    deps.origin = &origin_;
    deps.coherence = &protocol_;
    return ClientProxy(pc, id, deps);
  }

  void AttachFaults(const sim::FaultScheduleConfig& config) {
    faults_ = std::make_unique<sim::FaultSchedule>(config);
    network_.SetFaultSchedule(faults_.get());
  }

  static sim::FaultWindow Window(double start_s, double end_s) {
    sim::FaultWindow w;
    w.start = SimTime::Origin() + Duration::Seconds(start_s);
    w.end = SimTime::Origin() + Duration::Seconds(end_s);
    return w;
  }

  void Advance(Duration d) { events_.RunUntil(clock_.Now() + d); }

  sim::SimClock clock_;
  sim::Network network_;
  sim::EventQueue events_;
  cache::Cdn cdn_;
  coherence::DeltaAtomicProtocol protocol_;
  storage::ObjectStore store_;
  ttl::FixedTtlPolicy ttl_policy_;
  origin::OriginServer origin_;
  invalidation::InvalidationPipeline pipeline_;
  std::unique_ptr<sim::FaultSchedule> faults_;
};

TEST_F(DegradedModeTest, ClientEdgeLinkDownFallsBackToPassThrough) {
  sim::FaultScheduleConfig fc;
  fc.client_edge.windows.push_back(Window(0, 1000));
  AttachFaults(fc);

  ProxyConfig pc = SpeedKitConfig();
  pc.use_sketch = false;  // keep sketch-refresh traffic out of the counters
  ClientProxy proxy = MakeProxy(pc);
  FetchResult r = proxy.Fetch(kRecordUrl);

  // Edge path exhausted its attempts, then the reroute to the original
  // site succeeded.
  EXPECT_TRUE(r.response.ok());
  EXPECT_EQ(r.source, ServedFrom::kOrigin);
  const ProxyStats& s = proxy.stats();
  EXPECT_EQ(s.fallback_serves, 1u);
  EXPECT_EQ(s.timeouts, 3u);  // initial attempt + max_retries (2)
  EXPECT_EQ(s.retries, 2u);
  EXPECT_EQ(s.origin_fetches, 1u);
  EXPECT_EQ(s.ServedTotal(), s.requests);
}

TEST_F(DegradedModeTest, EdgeNodeOutageReroutesWithoutRetries) {
  ProxyConfig pc = SpeedKitConfig();
  pc.use_sketch = false;
  int edge = cdn_.RouteFor(1);
  cdn_.SetEdgeDown(edge, true);

  ClientProxy proxy = MakeProxy(pc);
  FetchResult r = proxy.Fetch(kRecordUrl);

  // A down edge is detected before any network attempt: no timeouts, just
  // the reroute.
  EXPECT_EQ(r.source, ServedFrom::kOrigin);
  const ProxyStats& s = proxy.stats();
  EXPECT_EQ(s.fallback_serves, 1u);
  EXPECT_EQ(s.timeouts, 0u);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(cdn_.edge_fault_stats(edge).down_rejects, 1u);
  EXPECT_EQ(s.ServedTotal(), s.requests);
}

TEST_F(DegradedModeTest, TotalOutageServesOfflineCopy) {
  ProxyConfig pc = SpeedKitConfig();
  pc.use_sketch = false;
  pc.stale_while_revalidate = false;  // force the expired copy to the network
  ClientProxy proxy = MakeProxy(pc);
  proxy.Fetch(kRecordUrl);  // t=1s: browser copy, TTL 60s

  sim::FaultScheduleConfig fc;
  fc.client_edge.windows.push_back(Window(50, 10000));
  fc.client_origin.windows.push_back(Window(50, 10000));
  AttachFaults(fc);
  Advance(Duration::Seconds(61));  // copy expired, both links dead

  FetchResult r = proxy.Fetch(kRecordUrl);
  EXPECT_EQ(r.source, ServedFrom::kOfflineCache);
  EXPECT_TRUE(r.response.ok());
  const ProxyStats& s = proxy.stats();
  EXPECT_EQ(s.offline_serves, 1u);
  // One degraded serve, even though two legs (edge, then direct) failed.
  EXPECT_EQ(s.fallback_serves, 1u);
  EXPECT_EQ(s.timeouts, 6u);  // 3 per failed leg
  EXPECT_EQ(s.retries, 4u);   // 2 per failed leg
  EXPECT_EQ(s.ServedTotal(), s.requests);
}

TEST_F(DegradedModeTest, UpstreamFailureServesStaleEdgeCopy) {
  ClientProxy a = MakeProxy(SpeedKitConfig(), 1);
  a.Fetch(kRecordUrl);  // t=1s: the edge now holds a copy, TTL 60s
  sim::FaultScheduleConfig fc;
  fc.edge_origin.windows.push_back(Window(50, 10000));
  AttachFaults(fc);
  Advance(Duration::Seconds(61));  // edge copy stale, upstream link dead

  uint64_t same_edge_id = 2;
  while (cdn_.RouteFor(same_edge_id) != cdn_.RouteFor(1)) ++same_edge_id;
  ProxyConfig pc = SpeedKitConfig();
  pc.use_sketch = false;
  ClientProxy b = MakeProxy(pc, same_edge_id);

  // The edge's revalidation cannot reach the origin; the stale copy is
  // served rather than failing the request (stale-if-error).
  FetchResult r = b.Fetch(kRecordUrl);
  EXPECT_TRUE(r.response.ok());
  EXPECT_EQ(r.source, ServedFrom::kEdgeCache);
  const ProxyStats& s = b.stats();
  EXPECT_EQ(s.edge_hits, 1u);
  EXPECT_EQ(s.fallback_serves, 1u);
  EXPECT_EQ(s.ServedTotal(), s.requests);
}

TEST_F(DegradedModeTest, ServedTotalReconcilesUnderLossyLinks) {
  sim::FaultScheduleConfig fc;
  fc.client_edge.loss_probability = 0.3;
  fc.client_origin.loss_probability = 0.3;
  fc.edge_origin.loss_probability = 0.3;
  AttachFaults(fc);

  ClientProxy proxy = MakeProxy(SpeedKitConfig());
  for (int i = 0; i < 40; ++i) {
    proxy.Fetch(kRecordUrl);
    Advance(Duration::Seconds(5));
  }
  const ProxyStats& s = proxy.stats();
  EXPECT_EQ(s.requests, 40u);
  EXPECT_EQ(s.ServedTotal(), s.requests);
  // With 30% loss per attempt, some timeouts (and retries that recovered)
  // must have occurred.
  EXPECT_GT(s.timeouts, 0u);
  EXPECT_GT(s.retries, 0u);
}

}  // namespace
}  // namespace speedkit::proxy
