// The arena client pool: shared-sink accounting must equal per-client
// accounting summed, and cold-client spill must be invisible to protocol
// behavior — a thawed client serves exactly what its never-frozen twin
// would.
#include "proxy/client_pool.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cdn.h"
#include "coherence/delta_atomic.h"
#include "common/chunked_pool.h"
#include "origin/origin_server.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "storage/object_store.h"
#include "ttl/ttl_policy.h"

namespace speedkit::proxy {
namespace {

constexpr char kRecordUrl[] = "https://shop.example.com/api/records/p1";

coherence::CoherenceConfig SketchCoherenceConfig() {
  coherence::CoherenceConfig config;
  config.sketch_capacity = 1000;
  config.sketch_fpr = 0.001;
  return config;
}

// One isolated server side (clock, network, CDN, origin). Comparative
// tests build two of these so the reference run and the run under test
// never share cache or sketch state.
struct World {
  World()
      : network(sim::NetworkConfig::Instant(), Pcg32(1)),
        events(&clock),
        cdn(2, 0),
        protocol(SketchCoherenceConfig()),
        ttl_policy(Duration::Seconds(60)),
        origin(origin::OriginConfig{}, &clock, &store, &ttl_policy,
               &protocol.publication()) {
    store.Put("p1", {{"price", 10.0}}, clock.Now());
  }

  ProxyDeps Deps() {
    ProxyDeps deps;
    deps.clock = &clock;
    deps.network = &network;
    deps.cdn = &cdn;
    deps.origin = &origin;
    deps.coherence = &protocol;
    return deps;
  }

  void Advance(Duration d) { events.RunUntil(clock.Now() + d); }

  sim::SimClock clock;
  sim::Network network;
  sim::EventQueue events;
  cache::Cdn cdn;
  coherence::DeltaAtomicProtocol protocol;
  storage::ObjectStore store;
  ttl::FixedTtlPolicy ttl_policy;
  origin::OriginServer origin;
};

ProxyConfig SpeedKitConfig() {
  ProxyConfig pc;
  pc.sketch_refresh_interval = Duration::Seconds(10);
  pc.device_overhead = Duration::Zero();
  return pc;
}

TEST(ClientPoolTest, SinkAggregationEqualsPerClientSum) {
  // Reference world: two standalone clients, each with its own stats.
  World ref;
  ClientProxy solo1(SpeedKitConfig(), 1, ref.Deps());
  ClientProxy solo2(SpeedKitConfig(), 2, ref.Deps());
  solo1.Fetch(kRecordUrl);
  solo1.Fetch(kRecordUrl);
  solo2.Fetch(kRecordUrl);
  ProxyStats expected;
  expected += solo1.stats();
  expected += solo2.stats();

  // Identical traffic through a pooled fleet in a fresh world: every
  // client records into the pool's sink.
  World w;
  ClientPool pool(ClientPoolConfig{}, w.Deps());
  ClientProxy* p1 = pool.MakeClient(SpeedKitConfig(), 1);
  ClientProxy* p2 = pool.MakeClient(SpeedKitConfig(), 2);
  p1->Fetch(kRecordUrl);
  p1->Fetch(kRecordUrl);
  p2->Fetch(kRecordUrl);

  EXPECT_EQ(pool.stats().requests, expected.requests);
  EXPECT_EQ(pool.stats().browser_hits, expected.browser_hits);
  EXPECT_EQ(pool.stats().edge_hits, expected.edge_hits);
  EXPECT_EQ(pool.stats().origin_fetches, expected.origin_fetches);
  EXPECT_EQ(pool.stats().sketch_refreshes, expected.sketch_refreshes);
  EXPECT_EQ(pool.stats().bytes_over_network, expected.bytes_over_network);
  EXPECT_EQ(pool.stats().ServedTotal(), pool.stats().requests);
  EXPECT_EQ(pool.stats().latency_browser_us.Fingerprint(),
            expected.latency_browser_us.Fingerprint());
  EXPECT_EQ(pool.stats().latency_ok_us.Fingerprint(),
            expected.latency_ok_us.Fingerprint());
  // In sink mode a pooled client's stats() IS the shared aggregate.
  EXPECT_EQ(&p1->stats(), &pool.stats());
  EXPECT_EQ(&p2->stats(), &pool.stats());
}

// Drives the same fetch timeline through a spilling pool and a
// non-spilling one in isolated worlds; every fetch must resolve
// identically (source, status, body) even when the spilling client was
// frozen in between.
TEST(ClientPoolTest, SpillIsBehaviorNeutralAgainstTwinWorld) {
  ClientPoolConfig spilling;
  spilling.spill = SpillMode::kOn;
  spilling.spill_idle_threshold = Duration::Seconds(60);
  ClientPoolConfig inert;
  inert.spill = SpillMode::kOff;

  auto run = [](World& w, ClientPool& pool) {
    ClientProxy* client = pool.MakeClient(SpeedKitConfig(), 1);
    std::vector<std::string> outcomes;
    auto record = [&](const FetchResult& r) {
      outcomes.push_back(std::string(ServedFromName(r.source)) + "/" +
                         std::to_string(r.response.status_code) + "/" +
                         r.response.body);
    };
    record(client->Fetch(kRecordUrl));   // origin fetch, warms the cache
    w.Advance(Duration::Seconds(5));
    record(client->Fetch(kRecordUrl));   // browser hit
    w.Advance(Duration::Seconds(90));    // idle past the threshold
    pool.SpillIdle(w.clock.Now());       // freezes in the spilling pool
    record(client->Fetch(kRecordUrl));   // stale -> revalidation path
    w.Advance(Duration::Seconds(1));
    record(client->Fetch(kRecordUrl));   // fresh again
    return outcomes;
  };

  World spill_world;
  ClientPool spill_pool(spilling, spill_world.Deps());
  World inert_world;
  ClientPool inert_pool(inert, inert_world.Deps());

  std::vector<std::string> with_spill = run(spill_world, spill_pool);
  std::vector<std::string> without = run(inert_world, inert_pool);
  EXPECT_EQ(with_spill, without);

  // And the spill really happened in the spilling world.
  EXPECT_EQ(spill_pool.SpillStats().freezes, 1u);
  EXPECT_EQ(spill_pool.SpillStats().thaws, 1u);
  EXPECT_EQ(inert_pool.SpillStats().freezes, 0u);
}

TEST(ClientPoolTest, SpillFreezesIdleButNotPristineClients) {
  World w;
  ClientPoolConfig config;
  config.spill = SpillMode::kOn;
  config.spill_idle_threshold = Duration::Seconds(60);
  ClientPool pool(config, w.Deps());
  ClientProxy* active = pool.MakeClient(SpeedKitConfig(), 1);
  ClientProxy* pristine = pool.MakeClient(SpeedKitConfig(), 2);

  ASSERT_TRUE(active->Fetch(kRecordUrl).response.ok());
  w.Advance(Duration::Seconds(90));
  EXPECT_EQ(pool.SpillIdle(w.clock.Now()), 1u);
  EXPECT_TRUE(active->browser_cache_frozen());
  EXPECT_GT(active->frozen_bytes(), 0u);
  // The pristine client has nothing worth a blob; it is not frozen.
  EXPECT_FALSE(pristine->browser_cache_frozen());

  ClientPoolSpillStats spill = pool.SpillStats();
  EXPECT_EQ(spill.freezes, 1u);
  EXPECT_EQ(spill.frozen_clients, 1u);
  EXPECT_GT(spill.frozen_bytes, 0u);
}

TEST(ClientPoolTest, AutoModeEngagesAtThreshold) {
  World w;
  ClientPoolConfig config;
  config.spill = SpillMode::kAuto;
  config.spill_auto_threshold = 3;
  ClientPool pool(config, w.Deps());
  pool.MakeClient(SpeedKitConfig(), 1);
  pool.MakeClient(SpeedKitConfig(), 2);
  EXPECT_FALSE(pool.spill_enabled());
  pool.MakeClient(SpeedKitConfig(), 3);
  EXPECT_TRUE(pool.spill_enabled());

  ClientPoolConfig off;
  off.spill = SpillMode::kOff;
  ClientPool off_pool(off, w.Deps());
  off_pool.MakeClient(SpeedKitConfig(), 4);
  EXPECT_FALSE(off_pool.spill_enabled());
  EXPECT_EQ(off_pool.SpillIdle(w.clock.Now()), 0u);
}

TEST(ClientPoolTest, BrowserCacheAccessorThawsFrozenClient) {
  World w;
  ClientPoolConfig config;
  config.spill = SpillMode::kOn;
  config.spill_idle_threshold = Duration::Zero();
  ClientPool pool(config, w.Deps());
  ClientProxy* client = pool.MakeClient(SpeedKitConfig(), 1);
  client->Fetch(kRecordUrl);
  size_t live_entries = client->browser_cache().size();
  ASSERT_GT(live_entries, 0u);

  pool.SpillIdle(w.clock.Now());
  ASSERT_TRUE(client->browser_cache_frozen());
  // Any direct cache access rehydrates transparently.
  EXPECT_EQ(client->browser_cache().size(), live_entries);
  EXPECT_FALSE(client->browser_cache_frozen());
}

TEST(ChunkedPoolTest, StableAddressesAcrossGrowth) {
  ChunkedPool<std::string, 4> pool;
  std::vector<std::string*> ptrs;
  for (int i = 0; i < 100; ++i) {
    ptrs.push_back(pool.Emplace("value-" + std::to_string(i)));
  }
  ASSERT_EQ(pool.size(), 100u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(pool.at(i), ptrs[i]);
    EXPECT_EQ(*ptrs[i], "value-" + std::to_string(i));
  }
  // ForEach visits in construction order.
  int next = 0;
  pool.ForEach([&](const std::string& s) {
    EXPECT_EQ(s, "value-" + std::to_string(next++));
  });
  EXPECT_EQ(next, 100);
}

}  // namespace
}  // namespace speedkit::proxy
