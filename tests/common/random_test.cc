#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace speedkit {
namespace {

TEST(Pcg32Test, DeterministicForSameSeed) {
  Pcg32 a(123, 7);
  Pcg32 b(123, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Pcg32Test, DifferentSeedsDiverge) {
  Pcg32 a(1);
  Pcg32 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32Test, DifferentStreamsDiverge) {
  Pcg32 a(42, 1);
  Pcg32 b(42, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32Test, NextBoundedStaysInRange) {
  Pcg32 rng(9);
  for (uint32_t bound : {1u, 2u, 7u, 100u, 1u << 20}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Pcg32Test, NextBoundedZeroAndOneReturnZero) {
  Pcg32 rng(9);
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Pcg32Test, NextBoundedIsRoughlyUniform) {
  Pcg32 rng(17);
  constexpr uint32_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) counts[rng.NextBounded(kBuckets)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Pcg32Test, NextDoubleInUnitInterval) {
  Pcg32 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Pcg32Test, ExponentialHasCorrectMean) {
  Pcg32 rng(11);
  double rate = 4.0;
  double sum = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.Exponential(rate);
  EXPECT_NEAR(sum / kDraws, 1.0 / rate, 0.01);
}

TEST(Pcg32Test, NormalHasCorrectMoments) {
  Pcg32 rng(13);
  constexpr int kDraws = 50000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < kDraws; ++i) {
    double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / kDraws;
  double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Pcg32Test, LogNormalMedianIsExpMu) {
  Pcg32 rng(19);
  constexpr int kDraws = 50001;
  std::vector<double> draws;
  draws.reserve(kDraws);
  for (int i = 0; i < kDraws; ++i) draws.push_back(rng.LogNormal(0.0, 0.5));
  std::nth_element(draws.begin(), draws.begin() + kDraws / 2, draws.end());
  EXPECT_NEAR(draws[kDraws / 2], 1.0, 0.03);  // median of LogNormal(0,.) = 1
}

TEST(Pcg32Test, ForkProducesIndependentStreams) {
  Pcg32 parent(42);
  Pcg32 child1 = parent.Fork(1);
  Pcg32 child2 = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.Next() == child2.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32Test, ForkIsDeterministic) {
  Pcg32 p1(42);
  Pcg32 p2(42);
  Pcg32 c1 = p1.Fork(7);
  Pcg32 c2 = p2.Fork(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1.Next(), c2.Next());
}

TEST(Pcg32Test, WithProbabilityExtremes) {
  Pcg32 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.WithProbability(0.0));
    EXPECT_TRUE(rng.WithProbability(1.0));
  }
}

}  // namespace
}  // namespace speedkit
