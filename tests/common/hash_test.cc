#include "common/hash.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

namespace speedkit {
namespace {

TEST(HashTest, Murmur3IsDeterministic) {
  EXPECT_EQ(Murmur3_64("hello"), Murmur3_64("hello"));
  EXPECT_EQ(Murmur3_128("hello").h1, Murmur3_128("hello").h1);
  EXPECT_EQ(Murmur3_128("hello").h2, Murmur3_128("hello").h2);
}

TEST(HashTest, Murmur3SeedChangesOutput) {
  EXPECT_NE(Murmur3_64("hello", 1), Murmur3_64("hello", 2));
}

TEST(HashTest, Murmur3DifferentInputsDiffer) {
  EXPECT_NE(Murmur3_64("hello"), Murmur3_64("hellp"));
  EXPECT_NE(Murmur3_64(""), Murmur3_64("a"));
}

TEST(HashTest, Murmur3HandlesAllTailLengths) {
  // Exercise every switch-case in the tail handling (lengths 0..16+).
  std::unordered_set<uint64_t> seen;
  std::string s;
  for (int len = 0; len <= 40; ++len) {
    seen.insert(Murmur3_64(s));
    s.push_back(static_cast<char>('a' + len % 26));
  }
  EXPECT_EQ(seen.size(), 41u);  // all distinct
}

TEST(HashTest, Hash128ComponentsAreIndependent) {
  // h1 and h2 feed double hashing; they must not be trivially related.
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    Hash128 h = Murmur3_128("key" + std::to_string(i));
    if ((h.h1 & 0xffff) == (h.h2 & 0xffff)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(HashTest, Murmur3LowBitsAreWellDistributed) {
  constexpr int kBuckets = 64;
  int counts[kBuckets] = {0};
  constexpr int kKeys = 64000;
  for (int i = 0; i < kKeys; ++i) {
    counts[Murmur3_64("url/" + std::to_string(i)) % kBuckets]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kKeys / kBuckets, kKeys / kBuckets * 0.15);
  }
}

TEST(HashTest, Fnv1aKnownVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(Fnv1a_64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a_64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a_64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, Mix64IsBijectiveOnSamples) {
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashTest, Mix64AvalanchesSmallDeltas) {
  // Consecutive inputs should land in different 1/16 partitions most of
  // the time (used for CDN edge routing of consecutive client ids).
  int same_bucket = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if (Mix64(i) % 16 == Mix64(i + 1) % 16) ++same_bucket;
  }
  EXPECT_LT(same_bucket, 130);  // ~62 expected
}

}  // namespace
}  // namespace speedkit
