#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace speedkit {
namespace {

TEST(HistogramTest, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.P50(), 0);
  EXPECT_EQ(h.P99(), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.Mean(), 100.0);
  EXPECT_EQ(h.P50(), 100);
  EXPECT_EQ(h.P99(), 100);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (int i = 0; i < 32; ++i) h.Add(i);
  // Values below 32 land in exact unit buckets.
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 31);
  EXPECT_EQ(h.P50(), 15);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Add(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, QuantilesHaveBoundedRelativeError) {
  Histogram h;
  Pcg32 rng(7);
  for (int i = 0; i < 100000; ++i) {
    h.Add(static_cast<int64_t>(rng.Uniform(1000, 1000000)));
  }
  // Uniform[1e3, 1e6]: P50 ~ 500500, P90 ~ 900100.
  EXPECT_NEAR(static_cast<double>(h.P50()), 500500.0, 500500.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.P90()), 900100.0, 900100.0 * 0.05);
}

TEST(HistogramTest, LargeValuesDoNotOverflow) {
  Histogram h;
  h.Add(INT64_MAX / 2);
  h.Add(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), INT64_MAX / 2);
  EXPECT_GE(h.ValueAtQuantile(1.0), INT64_MAX / 4);
}

TEST(HistogramTest, MergeCombinesCountsAndExtremes) {
  Histogram a;
  Histogram b;
  a.Add(10);
  a.Add(20);
  b.Add(5);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 5);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.Mean(), (10 + 20 + 5 + 1000) / 4.0, 1.0);
}

TEST(HistogramTest, MergeIntoEmpty) {
  Histogram a;
  Histogram b;
  b.Add(7);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 7);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Add(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.P99(), 0);
  h.Add(10);
  EXPECT_EQ(h.min(), 10);
}

TEST(HistogramTest, QuantileIsMonotone) {
  Histogram h;
  Pcg32 rng(3);
  for (int i = 0; i < 10000; ++i) h.Add(rng.NextBounded(1 << 20));
  int64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    int64_t v = h.ValueAtQuantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, BucketBoundaryValuesRoundTrip) {
  // Powers of two sit exactly on octave boundaries — the first value of a
  // new bucket range. Each must come back as itself (its bucket's upper
  // bound), not leak into the neighbouring bucket.
  for (int64_t v : {32, 33, 63, 64, 65, 1024, 4096}) {
    Histogram h;
    h.Add(v);
    EXPECT_EQ(h.ValueAtQuantile(0.0), v) << v;
    EXPECT_EQ(h.ValueAtQuantile(1.0), v) << v;
    EXPECT_EQ(h.P50(), v) << v;
  }
}

TEST(HistogramTest, QuantileEdgesWithTwoSamples) {
  Histogram h;
  h.Add(10);
  h.Add(1000);
  // Nearest-rank: q=0 and q=0.5 resolve to the lower sample, only q=1
  // reaches the upper one — and comes back clamped to the true max, not
  // its bucket's upper bound.
  EXPECT_EQ(h.ValueAtQuantile(0.0), 10);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 10);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 1000);
}

TEST(HistogramTest, QuantileAboveOneClampsToMaxBucket) {
  Histogram h;
  h.Add(100);
  EXPECT_EQ(h.ValueAtQuantile(1.5), h.ValueAtQuantile(1.0));
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(5);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

}  // namespace
}  // namespace speedkit
