#include "common/strings.h"

#include <gtest/gtest.h>

namespace speedkit {
namespace {

TEST(StringsTest, AsciiLower) {
  EXPECT_EQ(AsciiLower("Cache-Control"), "cache-control");
  EXPECT_EQ(AsciiLower("already lower"), "already lower");
  EXPECT_EQ(AsciiLower(""), "");
  EXPECT_EQ(AsciiLower("MiXeD123!"), "mixed123!");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("ETag", "etag"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("etag", "etags"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x  "), "x");
  EXPECT_EQ(TrimWhitespace("\t\r\n a b \n"), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("no-trim"), "no-trim");
}

TEST(StringsTest, SplitViewTrimsPieces) {
  auto parts = SplitView("public, max-age=60 , no-cache", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "public");
  EXPECT_EQ(parts[1], "max-age=60");
  EXPECT_EQ(parts[2], "no-cache");
}

TEST(StringsTest, SplitViewKeepsEmptyPieces) {
  auto parts = SplitView("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringsTest, SplitViewSingleToken) {
  auto parts = SplitView("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("/api/records/p1", "/api/records/"));
  EXPECT_FALSE(StartsWith("/api", "/api/records/"));
  EXPECT_TRUE(EndsWith("style.css", ".css"));
  EXPECT_FALSE(EndsWith("css", ".css"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringsTest, ParseInt64Valid) {
  EXPECT_EQ(ParseInt64("0").value(), 0);
  EXPECT_EQ(ParseInt64("60").value(), 60);
  EXPECT_EQ(ParseInt64("86400").value(), 86400);
}

TEST(StringsTest, ParseInt64Rejects) {
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("-1").has_value());
  EXPECT_FALSE(ParseInt64("+1").has_value());
  EXPECT_FALSE(ParseInt64("12a").has_value());
  EXPECT_FALSE(ParseInt64(" 12").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999").has_value());  // overflow
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

}  // namespace
}  // namespace speedkit
