#include "common/flat_map.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace speedkit {
namespace {

std::string Key(int i) { return "https://shop.example.com/api/k" + std::to_string(i); }

TEST(FlatStringMapTest, UpsertAndFind) {
  FlatStringMap<int> map;
  EXPECT_TRUE(map.empty());
  auto [v, inserted] = map.Upsert("a", 1);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, 1);
  EXPECT_EQ(map.size(), 1u);

  // A second Upsert of the same key leaves the stored value untouched.
  auto [v2, inserted2] = map.Upsert("a", 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, 1);
  EXPECT_EQ(map.size(), 1u);

  ASSERT_NE(map.Find("a"), nullptr);
  EXPECT_EQ(*map.Find("a"), 1);
  EXPECT_EQ(map.Find("missing"), nullptr);
}

TEST(FlatStringMapTest, FindAcceptsStringView) {
  FlatStringMap<int> map;
  map.Upsert("hello", 7);
  std::string_view view("hello-world", 5);
  ASSERT_NE(map.Find(view), nullptr);
  EXPECT_EQ(*map.Find(view), 7);
}

TEST(FlatStringMapTest, EraseLeavesOthersReachable) {
  FlatStringMap<int> map;
  for (int i = 0; i < 100; ++i) map.Upsert(Key(i), i);
  EXPECT_TRUE(map.Erase(Key(50)));
  EXPECT_FALSE(map.Erase(Key(50)));  // already gone
  EXPECT_EQ(map.size(), 99u);
  EXPECT_EQ(map.Find(Key(50)), nullptr);
  // Every other key still probes correctly through the tombstone.
  for (int i = 0; i < 100; ++i) {
    if (i == 50) continue;
    ASSERT_NE(map.Find(Key(i)), nullptr) << Key(i);
    EXPECT_EQ(*map.Find(Key(i)), i);
  }
}

TEST(FlatStringMapTest, TombstoneSlotsAreReused) {
  FlatStringMap<int> map;
  map.Upsert("x", 1);
  size_t cap = map.capacity();
  // Churn one key far more times than the capacity: without tombstone
  // reuse + same-size compaction this would force unbounded growth.
  for (int round = 0; round < 200; ++round) {
    EXPECT_TRUE(map.Erase("x"));
    auto [v, inserted] = map.Upsert("x", round);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*v, round);
  }
  EXPECT_EQ(map.size(), 1u);
  EXPECT_LE(map.capacity(), cap * 2);
}

TEST(FlatStringMapTest, GrowthPreservesEntries) {
  FlatStringMap<int> map;
  constexpr int kN = 5000;  // far past kMinCapacity: several rehashes
  for (int i = 0; i < kN; ++i) map.Upsert(Key(i), i);
  EXPECT_EQ(map.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    ASSERT_NE(map.Find(Key(i)), nullptr) << Key(i);
    EXPECT_EQ(*map.Find(Key(i)), i);
  }
}

TEST(FlatStringMapTest, EraseIfDropsMatchingEntries) {
  FlatStringMap<int> map;
  for (int i = 0; i < 20; ++i) map.Upsert(Key(i), i);
  size_t erased = map.EraseIf(
      [](const std::string&, const int& v) { return v % 2 == 0; });
  EXPECT_EQ(erased, 10u);
  EXPECT_EQ(map.size(), 10u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(map.Find(Key(i)) != nullptr, i % 2 == 1) << Key(i);
  }
}

TEST(FlatStringMapTest, ForEachVisitsEveryLiveEntry) {
  FlatStringMap<int> map;
  for (int i = 0; i < 50; ++i) map.Upsert(Key(i), i);
  map.Erase(Key(7));
  std::set<std::string> seen;
  map.ForEach([&](const std::string& k, const int&) { seen.insert(k); });
  EXPECT_EQ(seen.size(), 49u);
  EXPECT_EQ(seen.count(Key(7)), 0u);
}

TEST(FlatStringMapTest, ClearResets) {
  FlatStringMap<int> map;
  for (int i = 0; i < 30; ++i) map.Upsert(Key(i), i);
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(Key(3)), nullptr);
  map.Upsert("fresh", 1);
  EXPECT_EQ(map.size(), 1u);
}

}  // namespace
}  // namespace speedkit
