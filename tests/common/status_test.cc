#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace speedkit {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "not_found: missing key");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::PermissionDenied("x").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyPreservesState) {
  Status original = Status::Corruption("bad bytes");
  Status copy = original;
  EXPECT_EQ(copy.code(), StatusCode::kCorruption);
  EXPECT_EQ(copy.message(), "bad bytes");
  // Copy-assign over an error.
  Status target = Status::NotFound("x");
  target = original;
  EXPECT_EQ(target.message(), "bad bytes");
  // Copy-assign OK over an error clears it.
  target = Status::Ok();
  EXPECT_TRUE(target.ok());
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status s = Status::Internal("boom");
  Status moved = std::move(s);
  EXPECT_EQ(moved.code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::string> r = std::string(1000, 'a');
  std::string v = std::move(r).value();
  EXPECT_EQ(v.size(), 1000u);
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace speedkit
