#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace speedkit {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count]() { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitReturnsImmediatelyWhenIdle) {
  ThreadPool pool(2);
  pool.Wait();  // nothing submitted: must not hang
  std::atomic<int> count{0};
  pool.Submit([&count]() { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Wait();  // drained: must not hang either
}

TEST(ThreadPoolTest, PoolIsReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count]() { count.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(count.load(), 30);
}

TEST(ThreadPoolTest, DestructorJoinsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count]() { count.fetch_add(1); });
    }
    // No Wait(): the destructor must drain the queue before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenWhenAskedForZero) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count]() { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(&pool, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  std::vector<int> order;
  ParallelFor(nullptr, 10, [&order](size_t i) {
    order.push_back(static_cast<int>(i));
  });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);  // in order
}

TEST(ParallelForTest, ZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(AvailableCpusTest, PositiveAndNeverAboveHardwareConcurrency) {
  size_t n = ThreadPool::AvailableCpus();
  EXPECT_GE(n, 1u);
  unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) EXPECT_LE(n, static_cast<size_t>(hw));
  // DefaultThreads is the affinity-clamped count — in a container that
  // grants 2 CPUs of a 64-core host, sizing pools by hardware_concurrency
  // oversubscribes 32x; this is the knob every harness sizes by.
  EXPECT_EQ(ThreadPool::DefaultThreads(), n);
}

}  // namespace
}  // namespace speedkit
