#include "common/sim_time.h"

#include <gtest/gtest.h>

namespace speedkit {
namespace {

TEST(DurationTest, ConversionsAgree) {
  EXPECT_EQ(Duration::Seconds(1.5).micros(), 1500000);
  EXPECT_EQ(Duration::Millis(20).micros(), 20000);
  EXPECT_EQ(Duration::Minutes(2).micros(), 120000000);
  EXPECT_DOUBLE_EQ(Duration::Micros(2500).millis(), 2.5);
  EXPECT_DOUBLE_EQ(Duration::Millis(1500).seconds(), 1.5);
}

TEST(DurationTest, Arithmetic) {
  Duration d = Duration::Seconds(1) + Duration::Millis(500);
  EXPECT_EQ(d.micros(), 1500000);
  EXPECT_EQ((d - Duration::Millis(500)).micros(), 1000000);
  EXPECT_EQ((Duration::Seconds(2) * 1.5).micros(), 3000000);
  d += Duration::Seconds(1);
  EXPECT_EQ(d.seconds(), 2.5);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::Millis(1), Duration::Millis(2));
  EXPECT_EQ(Duration::Seconds(1), Duration::Millis(1000));
  EXPECT_GT(Duration::Max(), Duration::Seconds(1e9));
  EXPECT_EQ(Duration::Zero().micros(), 0);
}

TEST(DurationTest, ToStringPicksUnit) {
  EXPECT_EQ(Duration::Seconds(3).ToString(), "3s");
  EXPECT_EQ(Duration::Millis(20).ToString(), "20ms");
  EXPECT_EQ(Duration::Micros(7).ToString(), "7us");
}

TEST(SimTimeTest, OriginAndAdvance) {
  SimTime t = SimTime::Origin();
  EXPECT_EQ(t.micros(), 0);
  SimTime later = t + Duration::Seconds(10);
  EXPECT_EQ(later.seconds(), 10.0);
  EXPECT_EQ((later - t).seconds(), 10.0);
}

TEST(SimTimeTest, Comparisons) {
  SimTime a = SimTime::FromMicros(5);
  SimTime b = SimTime::FromMicros(6);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, SimTime::FromMicros(5));
  EXPECT_LT(a, SimTime::Max());
}

}  // namespace
}  // namespace speedkit
