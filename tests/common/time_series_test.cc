#include "common/time_series.h"

#include <gtest/gtest.h>

namespace speedkit {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

TEST(TimeSeriesTest, BucketsByTime) {
  TimeSeries ts(Duration::Seconds(60));
  ts.Add(At(10), 1.0);
  ts.Add(At(59), 0.0);
  ts.Add(At(61), 1.0);
  EXPECT_EQ(ts.num_buckets(), 2u);
  EXPECT_EQ(ts.CountAt(0), 2u);
  EXPECT_EQ(ts.CountAt(1), 1u);
  EXPECT_DOUBLE_EQ(ts.MeanAt(0), 0.5);
  EXPECT_DOUBLE_EQ(ts.MeanAt(1), 1.0);
}

TEST(TimeSeriesTest, EmptyBucketsReportZero) {
  TimeSeries ts(Duration::Seconds(60));
  ts.Add(At(150), 5.0);  // bucket 2; 0 and 1 stay empty
  EXPECT_EQ(ts.num_buckets(), 3u);
  EXPECT_EQ(ts.CountAt(0), 0u);
  EXPECT_DOUBLE_EQ(ts.MeanAt(0), 0.0);
  EXPECT_DOUBLE_EQ(ts.MeanAt(2), 5.0);
  EXPECT_DOUBLE_EQ(ts.SumAt(2), 5.0);
}

TEST(TimeSeriesTest, OutOfRangeQueriesAreSafe) {
  TimeSeries ts;
  EXPECT_EQ(ts.CountAt(99), 0u);
  EXPECT_DOUBLE_EQ(ts.MeanAt(99), 0.0);
  EXPECT_DOUBLE_EQ(ts.SumAt(99), 0.0);
}

TEST(TimeSeriesTest, BucketStart) {
  TimeSeries ts(Duration::Minutes(1));
  EXPECT_EQ(ts.BucketStart(0), SimTime::Origin());
  EXPECT_EQ(ts.BucketStart(3), At(180));
}

TEST(TimeSeriesTest, BoundaryLandsInUpperBucket) {
  TimeSeries ts(Duration::Seconds(60));
  ts.Add(At(60), 1.0);  // exactly on the boundary
  EXPECT_EQ(ts.CountAt(0), 0u);
  EXPECT_EQ(ts.CountAt(1), 1u);
}

}  // namespace
}  // namespace speedkit
