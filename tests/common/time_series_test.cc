#include "common/time_series.h"

#include <gtest/gtest.h>

namespace speedkit {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

TEST(TimeSeriesTest, BucketsByTime) {
  TimeSeries ts(Duration::Seconds(60));
  ts.Add(At(10), 1.0);
  ts.Add(At(59), 0.0);
  ts.Add(At(61), 1.0);
  EXPECT_EQ(ts.num_buckets(), 2u);
  EXPECT_EQ(ts.CountAt(0), 2u);
  EXPECT_EQ(ts.CountAt(1), 1u);
  EXPECT_DOUBLE_EQ(ts.MeanAt(0), 0.5);
  EXPECT_DOUBLE_EQ(ts.MeanAt(1), 1.0);
}

TEST(TimeSeriesTest, EmptyBucketsReportZero) {
  TimeSeries ts(Duration::Seconds(60));
  ts.Add(At(150), 5.0);  // bucket 2; 0 and 1 stay empty
  EXPECT_EQ(ts.num_buckets(), 3u);
  EXPECT_EQ(ts.CountAt(0), 0u);
  EXPECT_DOUBLE_EQ(ts.MeanAt(0), 0.0);
  EXPECT_DOUBLE_EQ(ts.MeanAt(2), 5.0);
  EXPECT_DOUBLE_EQ(ts.SumAt(2), 5.0);
}

TEST(TimeSeriesTest, OutOfRangeQueriesAreSafe) {
  TimeSeries ts;
  EXPECT_EQ(ts.CountAt(99), 0u);
  EXPECT_DOUBLE_EQ(ts.MeanAt(99), 0.0);
  EXPECT_DOUBLE_EQ(ts.SumAt(99), 0.0);
}

TEST(TimeSeriesTest, BucketStart) {
  TimeSeries ts(Duration::Minutes(1));
  EXPECT_EQ(ts.BucketStart(0), SimTime::Origin());
  EXPECT_EQ(ts.BucketStart(3), At(180));
}

TEST(TimeSeriesTest, BoundaryLandsInUpperBucket) {
  TimeSeries ts(Duration::Seconds(60));
  ts.Add(At(60), 1.0);  // exactly on the boundary
  EXPECT_EQ(ts.CountAt(0), 0u);
  EXPECT_EQ(ts.CountAt(1), 1u);
}

TEST(TimeSeriesTest, MergeSumsBucketsAndExtends) {
  TimeSeries a(Duration::Seconds(60));
  a.Add(At(30), 2.0);   // bucket 0
  a.Add(At(90), 4.0);   // bucket 1
  TimeSeries b(Duration::Seconds(60));
  b.Add(At(30), 6.0);   // bucket 0
  b.Add(At(150), 8.0);  // bucket 2: a must grow to fit
  a.Merge(b);
  EXPECT_EQ(a.num_buckets(), 3u);
  EXPECT_EQ(a.CountAt(0), 2u);
  EXPECT_DOUBLE_EQ(a.SumAt(0), 8.0);
  EXPECT_DOUBLE_EQ(a.MeanAt(0), 4.0);
  EXPECT_DOUBLE_EQ(a.SumAt(1), 4.0);
  EXPECT_DOUBLE_EQ(a.SumAt(2), 8.0);
}

TEST(TimeSeriesTest, MergeIgnoresMismatchedBucketWidth) {
  TimeSeries a(Duration::Seconds(60));
  a.Add(At(30), 2.0);
  TimeSeries b(Duration::Seconds(30));
  b.Add(At(30), 5.0);
  a.Merge(b);  // different binning: merging has no meaning, a unchanged
  EXPECT_EQ(a.num_buckets(), 1u);
  EXPECT_DOUBLE_EQ(a.SumAt(0), 2.0);
}

TEST(TimeSeriesTest, MergeEmptyIsNoOp) {
  TimeSeries a(Duration::Seconds(60));
  a.Add(At(30), 2.0);
  a.Merge(TimeSeries(Duration::Seconds(60)));
  EXPECT_EQ(a.num_buckets(), 1u);
  EXPECT_DOUBLE_EQ(a.SumAt(0), 2.0);
}

}  // namespace
}  // namespace speedkit
