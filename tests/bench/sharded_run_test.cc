// The sharded engine's test-enforced invariant: the merged output of a
// run is a pure function of (seed, shards) — bit-identical for any
// thread count — and a one-shard fleet reproduces the legacy
// single-domain stack exactly.
#include <gtest/gtest.h>

#include "bench/workload_runner.h"

namespace speedkit::bench {
namespace {

RunSpec SmallShardedSpec(int shards) {
  RunSpec spec = DefaultRunSpec();
  spec.stack.shards = shards;
  spec.stack.cdn_edges = 8;
  spec.traffic.num_clients = 16;
  spec.traffic.duration = Duration::Minutes(5);
  return spec;
}

TEST(ShardedRunTest, ThreadCountNeverChangesResults) {
  RunSpec base = SmallShardedSpec(/*shards=*/4);
  uint64_t reference = 0;
  for (int threads : {1, 4, 8}) {
    RunSpec spec = base;
    spec.run_threads = threads;
    uint64_t fp = FingerprintRun(RunWorkload(spec));
    if (threads == 1) {
      reference = fp;
    } else {
      EXPECT_EQ(fp, reference) << "diverged at run_threads=" << threads;
    }
  }
}

TEST(ShardedRunTest, RepeatedRunsAreBitIdentical) {
  RunSpec spec = SmallShardedSpec(/*shards=*/2);
  spec.run_threads = 2;
  EXPECT_EQ(FingerprintRun(RunWorkload(spec)),
            FingerprintRun(RunWorkload(spec)));
}

TEST(ShardedRunTest, OneShardFleetReproducesLegacyStack) {
  RunSpec spec = SmallShardedSpec(/*shards=*/1);
  // shards=1 dispatches to the legacy single-stack path in RunWorkload;
  // force the fleet path explicitly and compare.
  uint64_t legacy = FingerprintRun(RunWorkload(spec));
  uint64_t fleet = FingerprintRun(RunShardedWorkload(spec));
  EXPECT_EQ(fleet, legacy);
}

TEST(ShardedRunTest, ShardCountIsAModelParameter) {
  // Different shard counts are DIFFERENT models (each shard replicates the
  // origin and write stream), so fingerprints are expected to differ —
  // catching an accidental "shards don't matter" collapse in the merge.
  uint64_t one = FingerprintRun(RunWorkload(SmallShardedSpec(1)));
  uint64_t four = FingerprintRun(RunWorkload(SmallShardedSpec(4)));
  EXPECT_NE(one, four);
}

TEST(ShardedRunTest, MergedShardedOutputCarriesNoCaptures) {
  RunSpec spec = SmallShardedSpec(/*shards=*/2);
  spec.stack.obs.metrics = true;
  spec.stack.obs.tracing = true;
  RunOutput out = RunWorkload(spec);
  EXPECT_EQ(out.metrics, nullptr);
  EXPECT_EQ(out.traces, nullptr);
  EXPECT_GT(out.traffic.proxies.requests, 0u);
}

}  // namespace
}  // namespace speedkit::bench
