#include "bench/parallel_runner.h"

#include <gtest/gtest.h>

#include <vector>

namespace speedkit::bench {
namespace {

// Small enough to run multiple sweeps in a unit test, large enough that a
// nondeterministic merge would almost surely show up in the counters.
RunSpec TinySpec() {
  RunSpec spec = DefaultRunSpec();
  spec.catalog.num_products = 200;
  spec.traffic.num_clients = 3;
  spec.traffic.duration = Duration::Minutes(2);
  spec.traffic.writes_per_sec = 2.0;
  return spec;
}

// The scalar footprint of a merged run used for equality checks.
std::vector<double> Footprint(const RunOutput& out) {
  return {
      static_cast<double>(out.traffic.proxies.requests),
      static_cast<double>(out.traffic.proxies.browser_hits),
      static_cast<double>(out.traffic.proxies.edge_hits),
      static_cast<double>(out.traffic.proxies.origin_fetches),
      static_cast<double>(out.traffic.proxies.errors),
      static_cast<double>(out.origin_requests),
      static_cast<double>(out.staleness.reads),
      static_cast<double>(out.staleness.stale_reads),
      out.traffic.api_latency_us.Sum(),
      static_cast<double>(out.traffic.api_latency_us.P99()),
      out.staleness_us.Sum(),
  };
}

TEST(SpecForSeedTest, SeedZeroIsTheBaseSpec) {
  RunSpec base = TinySpec();
  RunSpec derived = SpecForSeed(base, 0);
  EXPECT_EQ(derived.stack.seed, base.stack.seed);
  EXPECT_EQ(derived.catalog_seed, base.catalog_seed);
  EXPECT_EQ(derived.traffic.seed_salt, base.traffic.seed_salt);
}

TEST(SpecForSeedTest, SeedsDecorrelateAllRngStreams) {
  RunSpec base = TinySpec();
  RunSpec a = SpecForSeed(base, 1);
  RunSpec b = SpecForSeed(base, 2);
  EXPECT_NE(a.stack.seed, base.stack.seed);
  EXPECT_NE(a.stack.seed, b.stack.seed);
  EXPECT_NE(a.catalog_seed, b.catalog_seed);
  EXPECT_NE(a.traffic.seed_salt, b.traffic.seed_salt);
}

TEST(RunSweepTest, MergedResultsAreIdenticalAcrossThreadCounts) {
  std::vector<RunSpec> configs = {TinySpec()};
  configs.push_back(TinySpec());
  configs[1].traffic.writes_per_sec = 6.0;

  SweepResult serial = RunSweep(configs, /*num_seeds=*/3, /*threads=*/1);
  SweepResult parallel = RunSweep(configs, /*num_seeds=*/3, /*threads=*/4);

  ASSERT_EQ(serial.outputs.size(), 2u);
  ASSERT_EQ(parallel.outputs.size(), 2u);
  for (size_t c = 0; c < configs.size(); ++c) {
    ASSERT_EQ(serial.outputs[c].size(), 3u);
    EXPECT_EQ(Footprint(MergeRuns(serial.outputs[c])),
              Footprint(MergeRuns(parallel.outputs[c])))
        << "config " << c;
    // Per-seed results line up slot for slot, not just in aggregate.
    for (size_t s = 0; s < 3; ++s) {
      EXPECT_EQ(Footprint(serial.outputs[c][s]),
                Footprint(parallel.outputs[c][s]))
          << "config " << c << " seed " << s;
    }
  }
}

TEST(RunSweepTest, SeedsProduceDifferentTrials) {
  SweepResult sweep = RunSweep({TinySpec()}, /*num_seeds=*/2, /*threads=*/1);
  EXPECT_NE(Footprint(sweep.outputs[0][0]), Footprint(sweep.outputs[0][1]));
}

TEST(RunSweepTest, RecordsWallAndCpuTime) {
  SweepResult sweep = RunSweep({TinySpec()}, /*num_seeds=*/2, /*threads=*/2);
  EXPECT_GT(sweep.wall_seconds, 0.0);
  EXPECT_GT(sweep.cpu_seconds, 0.0);
  EXPECT_GT(sweep.Speedup(), 0.0);
}

TEST(MergeRunsTest, CountersSumAndGaugesMax) {
  SweepResult sweep = RunSweep({TinySpec()}, /*num_seeds=*/2, /*threads=*/1);
  const std::vector<RunOutput>& runs = sweep.outputs[0];
  RunOutput merged = MergeRuns(runs);
  EXPECT_EQ(merged.traffic.proxies.requests,
            runs[0].traffic.proxies.requests +
                runs[1].traffic.proxies.requests);
  EXPECT_EQ(merged.origin_requests,
            runs[0].origin_requests + runs[1].origin_requests);
  EXPECT_EQ(merged.staleness.reads,
            runs[0].staleness.reads + runs[1].staleness.reads);
  EXPECT_EQ(merged.sketch_entries,
            std::max(runs[0].sketch_entries, runs[1].sketch_entries));
  EXPECT_EQ(merged.traffic.api_latency_us.count(),
            runs[0].traffic.api_latency_us.count() +
                runs[1].traffic.api_latency_us.count());
  // Every per-seed serve bucket still reconciles after the merge.
  EXPECT_EQ(merged.traffic.proxies.ServedTotal(),
            merged.traffic.proxies.requests);
}

TEST(SeedStatsTest, MomentsAndPercentiles) {
  SeedStats stats = SeedStatsOfValues({4.0, 2.0, 6.0, 8.0});
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_NEAR(stats.stddev, 2.2360679, 1e-6);  // population
  EXPECT_DOUBLE_EQ(stats.min, 2.0);
  EXPECT_DOUBLE_EQ(stats.max, 8.0);
  EXPECT_DOUBLE_EQ(stats.p50, 4.0);  // nearest-rank
  EXPECT_DOUBLE_EQ(stats.p99, 8.0);
}

TEST(SeedStatsTest, EmptyAndSingleton) {
  SeedStats empty = SeedStatsOfValues({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  SeedStats one = SeedStatsOfValues({3.5});
  EXPECT_DOUBLE_EQ(one.mean, 3.5);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
  EXPECT_DOUBLE_EQ(one.p50, 3.5);
  EXPECT_DOUBLE_EQ(one.p99, 3.5);
}

}  // namespace
}  // namespace speedkit::bench
