#include "bench/json_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace speedkit::bench {
namespace {

TEST(JsonValueTest, ScalarsDump) {
  EXPECT_EQ(JsonValue(nullptr).Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue(static_cast<uint64_t>(1) << 40).Dump(), "1099511627776");
  EXPECT_EQ(JsonValue(1.5).Dump(), "1.5");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
}

TEST(JsonValueTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(JsonValue(std::nan("")).Dump(), "null");
  EXPECT_EQ(JsonValue(1.0 / 0.0).Dump(), "null");
}

TEST(JsonValueTest, StringsAreEscaped) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd").Dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(JsonValue(std::string(1, '\x01')).Dump(), "\"\\u0001\"");
}

TEST(JsonValueTest, ObjectKeepsInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", 1);
  obj.Set("alpha", 2);
  std::string dump = obj.Dump();
  EXPECT_LT(dump.find("zebra"), dump.find("alpha"));
}

TEST(JsonValueTest, SetOverwritesInPlace) {
  JsonValue obj = JsonValue::Object();
  obj.Set("k", 1);
  obj.Set("other", 2);
  obj.Set("k", 3);
  EXPECT_EQ(obj.size(), 2u);
  std::string dump = obj.Dump(0);
  EXPECT_NE(dump.find("\"k\": 3"), std::string::npos);
  EXPECT_LT(dump.find("\"k\""), dump.find("\"other\""));
}

TEST(JsonValueTest, EmptyContainers) {
  EXPECT_EQ(JsonValue::Object().Dump(), "{}");
  EXPECT_EQ(JsonValue::Array().Dump(), "[]");
}

TEST(JsonValueTest, NestedStructureDumpIsDeterministic) {
  JsonValue root = JsonValue::Object();
  root.Set("bench", "test");
  JsonValue rows = JsonValue::Array();
  rows.Push(JsonRow({{"a", 1}, {"b", 2.5}}));
  rows.Push(JsonRow({{"a", 3}, {"b", false}}));
  root.Set("rows", std::move(rows));
  EXPECT_EQ(root.Dump(),
            "{\n"
            "  \"bench\": \"test\",\n"
            "  \"rows\": [\n"
            "    {\n"
            "      \"a\": 1,\n"
            "      \"b\": 2.5\n"
            "    },\n"
            "    {\n"
            "      \"a\": 3,\n"
            "      \"b\": false\n"
            "    }\n"
            "  ]\n"
            "}");
}

TEST(JsonWriterTest, WritesFileWithTrailingNewline) {
  std::string path = ::testing::TempDir() + "/json_writer_test.json";
  JsonValue root = JsonValue::Object();
  root.Set("x", 1);
  ASSERT_TRUE(WriteJsonFile(path, root));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "{\n  \"x\": 1\n}\n");
  std::remove(path.c_str());
}

TEST(JsonWriterTest, JsonPathFromFlagResolution) {
  EXPECT_EQ(JsonPathFromFlag("", "baselines"), "");
  EXPECT_EQ(JsonPathFromFlag("true", "baselines"), "BENCH_baselines.json");
  EXPECT_EQ(JsonPathFromFlag("/tmp/out.json", "baselines"), "/tmp/out.json");
}

}  // namespace
}  // namespace speedkit::bench
