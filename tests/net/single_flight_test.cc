// Single-flight is the socketed tier's thundering-herd defense: N
// concurrent callers for one key must produce exactly ONE execution of
// the expensive fn, with the other N-1 absorbing the leader's value.
// The blocking variant is exercised with real threads; the event-loop
// variant with explicit Begin/Complete sequencing.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/single_flight.h"

namespace speedkit::net {
namespace {

TEST(SingleFlightTest, ConcurrentCallersShareOneExecution) {
  SingleFlight<int> flight;
  std::atomic<int> executions{0};
  std::atomic<int> in_fn{0};
  std::atomic<bool> release{false};

  constexpr int kThreads = 8;
  std::vector<SingleFlight<int>::Outcome> outcomes(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      outcomes[t] = flight.Do("hot-key", [&] {
        in_fn.store(true);
        // Park the leader until every other thread has had ample time to
        // arrive and join the flight.
        while (!release.load()) std::this_thread::yield();
        return ++executions;
      });
    });
  }
  // Wait for a leader to be inside fn, give joiners time to pile up, then
  // let the flight finish.
  while (!in_fn.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.store(true);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(executions.load(), 1);
  int leaders = 0;
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.value, 1);  // everyone got the single execution's value
    if (!outcome.shared) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_EQ(flight.flights(), 1u);
  // Every non-leader that arrived while the flight was open joined it.
  EXPECT_EQ(flight.joins(), static_cast<uint64_t>(kThreads - 1));
}

TEST(SingleFlightTest, SequentialCallsEachRunTheirOwnFlight) {
  // Coalescing is about concurrency, not memoization: once a flight
  // finishes, the next caller leads a fresh one.
  SingleFlight<int> flight;
  int executions = 0;
  auto fn = [&executions] { return ++executions; };
  EXPECT_EQ(flight.Do("k", fn).value, 1);
  EXPECT_EQ(flight.Do("k", fn).value, 2);
  EXPECT_EQ(flight.flights(), 2u);
  EXPECT_EQ(flight.joins(), 0u);
}

TEST(SingleFlightTest, DistinctKeysDoNotCoalesce) {
  SingleFlight<std::string> flight;
  EXPECT_EQ(flight.Do("a", [] { return std::string("va"); }).value, "va");
  EXPECT_EQ(flight.Do("b", [] { return std::string("vb"); }).value, "vb");
  EXPECT_EQ(flight.flights(), 2u);
  EXPECT_EQ(flight.joins(), 0u);
}

TEST(AsyncSingleFlightTest, JoinersFireOnCompleteInBeginOrder) {
  AsyncSingleFlight<int> flight;
  std::vector<int> fired;

  ASSERT_EQ(flight.Begin("k", {}), AsyncSingleFlight<int>::Role::kLeader);
  EXPECT_TRUE(flight.Active("k"));
  EXPECT_EQ(flight.Begin("k", [&](const int& v) { fired.push_back(v * 10); }),
            AsyncSingleFlight<int>::Role::kJoined);
  EXPECT_EQ(flight.Begin("k", [&](const int& v) { fired.push_back(v * 20); }),
            AsyncSingleFlight<int>::Role::kJoined);

  EXPECT_EQ(flight.Complete("k", 7), 2u);
  EXPECT_EQ(fired, (std::vector<int>{70, 140}));
  EXPECT_FALSE(flight.Active("k"));
  EXPECT_EQ(flight.leaders(), 1u);
  EXPECT_EQ(flight.joins(), 2u);
  // Completing a finished flight is a harmless no-op.
  EXPECT_EQ(flight.Complete("k", 9), 0u);
}

TEST(AsyncSingleFlightTest, CallbackMayStartTheNextFlight) {
  // A joiner reacting to the value by re-requesting the key must lead a
  // NEW flight (the finished one is closed before callbacks run).
  AsyncSingleFlight<int> flight;
  ASSERT_EQ(flight.Begin("k", {}), AsyncSingleFlight<int>::Role::kLeader);
  AsyncSingleFlight<int>::Role rejoin_role = AsyncSingleFlight<int>::Role::kJoined;
  flight.Begin("k", [&](const int&) { rejoin_role = flight.Begin("k", {}); });
  flight.Complete("k", 1);
  EXPECT_EQ(rejoin_role, AsyncSingleFlight<int>::Role::kLeader);
  EXPECT_TRUE(flight.Active("k"));  // the re-begun flight is open
}

TEST(AsyncSingleFlightTest, AbandonDropsWaitersWithoutFiring) {
  AsyncSingleFlight<int> flight;
  bool fired = false;
  flight.Begin("k", {});
  flight.Begin("k", [&](const int&) { fired = true; });
  EXPECT_EQ(flight.Abandon("k"), 1u);
  EXPECT_FALSE(fired);
  EXPECT_FALSE(flight.Active("k"));
}

}  // namespace
}  // namespace speedkit::net
