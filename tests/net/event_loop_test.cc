// The event loop's contract: fd readiness, one-shot timers with lazy
// cancel, cross-thread Post/Stop wakeups, and safe unregistration from
// inside a callback — the invariants every Connection and the edged
// server lean on.
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "net/event_loop.h"

namespace speedkit::net {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

TEST(EventLoopTest, DispatchesReadableFd) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string seen;
  loop.AddFd(fds[0], EventLoop::kReadable, [&](uint32_t events) {
    EXPECT_TRUE(events & EventLoop::kReadable);
    char buf[16];
    ssize_t n = ::read(fds[0], buf, sizeof(buf));
    ASSERT_GT(n, 0);
    seen.assign(buf, static_cast<size_t>(n));
    loop.Stop();
  });
  ASSERT_EQ(::write(fds[1], "ping", 4), 4);
  loop.Run();
  EXPECT_EQ(seen, "ping");
  loop.RemoveFd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoopTest, CallbackMayRemoveItsOwnFd) {
  // Connections unregister and destroy themselves from inside their own
  // dispatch; the loop must tolerate the callback pulling the fd out from
  // under it mid-batch.
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int fired = 0;
  loop.AddFd(fds[0], EventLoop::kReadable, [&](uint32_t) {
    ++fired;
    loop.RemoveFd(fds[0]);
    ::close(fds[0]);
    loop.Stop();
  });
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  loop.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.num_fds(), 0u);
  ::close(fds[1]);
}

TEST(EventLoopTest, TimerFiresOnceAfterItsDelay) {
  EventLoop loop;
  int fired = 0;
  auto t0 = std::chrono::steady_clock::now();
  loop.AddTimer(microseconds(20000), [&] {
    ++fired;
    loop.Stop();
  });
  loop.Run();
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(fired, 1);
  EXPECT_GE(elapsed, microseconds(15000));  // fired after, not before
  EXPECT_EQ(loop.num_timers(), 0u);         // one-shot: gone once fired
}

TEST(EventLoopTest, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::string order;
  loop.AddTimer(microseconds(30000), [&] {
    order += "late";
    loop.Stop();
  });
  loop.AddTimer(microseconds(5000), [&] { order += "early,"; });
  loop.Run();
  EXPECT_EQ(order, "early,late");
}

TEST(EventLoopTest, CancelledTimerNeverFires) {
  EventLoop loop;
  bool cancelled_fired = false;
  EventLoop::TimerId id =
      loop.AddTimer(microseconds(5000), [&] { cancelled_fired = true; });
  EXPECT_TRUE(loop.CancelTimer(id));
  EXPECT_FALSE(loop.CancelTimer(id));  // double-cancel reports failure
  loop.AddTimer(microseconds(20000), [&] { loop.Stop(); });
  loop.Run();
  EXPECT_FALSE(cancelled_fired);
}

TEST(EventLoopTest, PostRunsOnTheLoopThreadAndWakesIt) {
  EventLoop loop;
  std::thread::id loop_thread;
  std::thread::id posted_from;
  std::thread runner([&] {
    loop_thread = std::this_thread::get_id();
    loop.Run();
  });
  // Post from a foreign thread into a loop that is idle in epoll_wait.
  std::thread::id ran_on;
  std::thread poster([&] {
    posted_from = std::this_thread::get_id();
    loop.Post([&] {
      ran_on = std::this_thread::get_id();
      loop.Stop();
    });
  });
  poster.join();
  runner.join();
  EXPECT_EQ(ran_on, loop_thread);
  EXPECT_NE(ran_on, posted_from);
}

TEST(EventLoopTest, StopFromAnotherThreadBreaksAnIdleLoop) {
  EventLoop loop;
  std::thread runner([&] { loop.Run(); });
  std::this_thread::sleep_for(milliseconds(20));  // let it reach epoll_wait
  loop.Stop();
  runner.join();  // would hang forever if Stop's wakeup were lost
  // Re-runnable after a Stop: RunOnce drains without blocking forever.
  loop.RunOnce(milliseconds(1));
}

TEST(EventLoopTest, RunOnceHonorsItsWaitBound) {
  EventLoop loop;
  auto t0 = std::chrono::steady_clock::now();
  loop.RunOnce(milliseconds(10));
  EXPECT_LT(std::chrono::steady_clock::now() - t0, milliseconds(500));
}

}  // namespace
}  // namespace speedkit::net
