// The ring is the placement contract of the socketed tier: the loadgen's
// client-side router, `speedkit_edged --ring`, and operators reasoning
// about topology changes all assume (1) placement is a pure function of
// the member list, (2) vnodes smooth the load split, and (3) membership
// changes move only the keys in the lost/gained arcs. Each property is
// pinned here.
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/hash_ring.h"

namespace speedkit::net {
namespace {

std::vector<std::string> Keys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("https://shop.example.com/api/records/rec-" +
                   std::to_string(i));
  }
  return keys;
}

TEST(HashRingTest, EmptyRingOwnsNothing) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.NodeFor("anything"), "");
  EXPECT_TRUE(ring.NodesFor("anything", 3).empty());
}

TEST(HashRingTest, PlacementIsAPureFunctionOfMembership) {
  // Two rings built with the same members — in different insertion order —
  // place every key identically: placement depends on hashes, not history.
  HashRing a(200);
  a.AddNode("edge-a");
  a.AddNode("edge-b");
  a.AddNode("edge-c");
  HashRing b(200);
  b.AddNode("edge-c");
  b.AddNode("edge-a");
  b.AddNode("edge-b");
  for (const std::string& key : Keys(2000)) {
    EXPECT_EQ(a.NodeFor(key), b.NodeFor(key)) << key;
  }
  EXPECT_EQ(a.num_vnodes(), 600u);
}

TEST(HashRingTest, RepeatedAddIsANoOp) {
  HashRing ring(100);
  ring.AddNode("edge-a");
  ring.AddNode("edge-a");
  EXPECT_EQ(ring.num_nodes(), 1u);
  EXPECT_EQ(ring.num_vnodes(), 100u);
}

TEST(HashRingTest, VnodesKeepTheLoadSplitNearUniform) {
  // The docs promise max/mean <= ~1.25 at 200 vnodes; gate at exactly
  // 1.25 so a hash or vnode-labeling regression that skews placement
  // fails loudly.
  HashRing ring(200);
  for (const char* n : {"edge-a", "edge-b", "edge-c", "edge-d", "edge-e"}) {
    ring.AddNode(n);
  }
  std::map<std::string_view, size_t> load;
  const size_t kKeys = 20000;
  for (const std::string& key : Keys(kKeys)) load[ring.NodeFor(key)]++;
  ASSERT_EQ(load.size(), 5u);
  const double mean = static_cast<double>(kKeys) / 5.0;
  for (const auto& [node, n] : load) {
    EXPECT_LT(static_cast<double>(n) / mean, 1.25)
        << node << " owns " << n << " of " << kKeys;
    EXPECT_GT(static_cast<double>(n) / mean, 0.75)
        << node << " owns " << n << " of " << kKeys;
  }
}

TEST(HashRingTest, RemovingANodeOnlyMovesItsOwnKeys) {
  HashRing before(200);
  for (const char* n : {"edge-a", "edge-b", "edge-c", "edge-d"}) {
    before.AddNode(n);
  }
  HashRing after(200);
  for (const char* n : {"edge-a", "edge-b", "edge-c", "edge-d"}) {
    after.AddNode(n);
  }
  ASSERT_TRUE(after.RemoveNode("edge-d"));

  size_t moved = 0;
  size_t owned_by_removed = 0;
  std::vector<std::string> keys = Keys(8000);
  for (const std::string& key : keys) {
    std::string_view was = before.NodeFor(key);
    std::string_view now = after.NodeFor(key);
    if (was == "edge-d") {
      ++owned_by_removed;
      EXPECT_NE(now, "edge-d");
    } else {
      // Minimal disruption: a key not owned by the removed node must not
      // move at all.
      EXPECT_EQ(was, now) << key;
    }
    if (was != now) ++moved;
  }
  // Exactly the removed node's keys moved — roughly 1/4 of the space.
  EXPECT_EQ(moved, owned_by_removed);
  EXPECT_GT(owned_by_removed, keys.size() / 8);
  EXPECT_LT(owned_by_removed, keys.size() / 2);
}

TEST(HashRingTest, AddingANodeOnlyStealsKeys) {
  HashRing before(200);
  before.AddNode("edge-a");
  before.AddNode("edge-b");
  HashRing after(200);
  after.AddNode("edge-a");
  after.AddNode("edge-b");
  after.AddNode("edge-c");

  for (const std::string& key : Keys(4000)) {
    std::string_view now = after.NodeFor(key);
    // Every movement must be INTO the new node; keys never shuffle
    // between pre-existing members.
    if (now != before.NodeFor(key)) EXPECT_EQ(now, "edge-c") << key;
  }
}

TEST(HashRingTest, NodesForReturnsDistinctReplicaSet) {
  HashRing ring(200);
  for (const char* n : {"edge-a", "edge-b", "edge-c"}) ring.AddNode(n);
  for (const std::string& key : Keys(50)) {
    std::vector<std::string_view> set = ring.NodesFor(key, 2);
    ASSERT_EQ(set.size(), 2u);
    EXPECT_NE(set[0], set[1]);
    EXPECT_EQ(set[0], ring.NodeFor(key));
    // Asking for more nodes than exist returns all of them, once each.
    EXPECT_EQ(ring.NodesFor(key, 10).size(), 3u);
  }
}

TEST(HashRingTest, RemoveUnknownNodeIsRejected) {
  HashRing ring;
  ring.AddNode("edge-a");
  EXPECT_FALSE(ring.RemoveNode("edge-zzz"));
  EXPECT_EQ(ring.num_nodes(), 1u);
}

}  // namespace
}  // namespace speedkit::net
