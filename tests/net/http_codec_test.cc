// The wire codec is the trust boundary of the socketed tier: bytes from
// the network either parse into exactly one well-formed message or the
// connection dies. Framing (incremental parse, pipelining, Content-Length)
// and the serialize->parse round trip are pinned here.
#include <string>

#include <gtest/gtest.h>

#include "net/http_codec.h"

namespace speedkit::net {
namespace {

TEST(HttpCodecTest, ParsesARequestWithHeadersAndBody) {
  const std::string wire =
      "POST /api/records/1 HTTP/1.1\r\n"
      "Host: shop.example.com\r\n"
      "X-SpeedKit-Client: 7\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "hello";
  WireRequest req;
  size_t consumed = 0;
  ASSERT_EQ(ParseRequest(wire, &req, &consumed), ParseStatus::kOk);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(req.method, http::Method::kPost);
  EXPECT_EQ(req.target, "/api/records/1");
  EXPECT_EQ(req.headers.Get("Host"), "shop.example.com");
  EXPECT_EQ(req.headers.Get("X-SpeedKit-Client"), "7");
  EXPECT_EQ(req.body, "hello");
  EXPECT_TRUE(req.keep_alive);  // HTTP/1.1 default
}

TEST(HttpCodecTest, IncrementalFeedReportsNeedMoreUntilComplete) {
  const std::string wire =
      "GET /x HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n\r\nabc";
  WireRequest req;
  size_t consumed = 0;
  // Every strict prefix is kNeedMore — never kError, never a short parse.
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_EQ(ParseRequest(wire.substr(0, len), &req, &consumed),
              ParseStatus::kNeedMore)
        << "prefix length " << len;
  }
  ASSERT_EQ(ParseRequest(wire, &req, &consumed), ParseStatus::kOk);
  EXPECT_EQ(req.body, "abc");
}

TEST(HttpCodecTest, PipelinedRequestsParseInSequence) {
  const std::string wire =
      "GET /a HTTP/1.1\r\nHost: h\r\n\r\n"
      "GET /b HTTP/1.1\r\nHost: h\r\n\r\n";
  WireRequest req;
  size_t consumed = 0;
  ASSERT_EQ(ParseRequest(wire, &req, &consumed), ParseStatus::kOk);
  EXPECT_EQ(req.target, "/a");
  std::string_view rest = std::string_view(wire).substr(consumed);
  ASSERT_EQ(ParseRequest(rest, &req, &consumed), ParseStatus::kOk);
  EXPECT_EQ(req.target, "/b");
  EXPECT_EQ(consumed, rest.size());
}

TEST(HttpCodecTest, ConnectionHeaderControlsKeepAlive) {
  WireRequest req;
  size_t consumed = 0;
  ASSERT_EQ(ParseRequest("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", &req,
                         &consumed),
            ParseStatus::kOk);
  EXPECT_FALSE(req.keep_alive);
  ASSERT_EQ(ParseRequest("GET / HTTP/1.0\r\n\r\n", &req, &consumed),
            ParseStatus::kOk);
  EXPECT_FALSE(req.keep_alive);  // 1.0 defaults to close
  ASSERT_EQ(ParseRequest(
                "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", &req,
                &consumed),
            ParseStatus::kOk);
  EXPECT_TRUE(req.keep_alive);
}

TEST(HttpCodecTest, MalformedInputIsAnErrorNotAGuess) {
  WireRequest req;
  size_t consumed = 0;
  EXPECT_EQ(ParseRequest("NONSENSE\r\n\r\n", &req, &consumed),
            ParseStatus::kError);
  EXPECT_EQ(ParseRequest("GET /x HTTP/2\r\n\r\n", &req, &consumed),
            ParseStatus::kError);
  EXPECT_EQ(
      ParseRequest("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", &req,
                   &consumed),
      ParseStatus::kError);
  // Chunked transfer is deliberately unsupported: error, never mis-framed.
  EXPECT_EQ(ParseRequest(
                "GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", &req,
                &consumed),
            ParseStatus::kError);
}

TEST(HttpCodecTest, OversizedHeaderBlockIsRejected) {
  std::string wire = "GET /x HTTP/1.1\r\nX-Pad: ";
  wire.append(kMaxHeaderBytes, 'a');
  WireRequest req;
  size_t consumed = 0;
  EXPECT_EQ(ParseRequest(wire, &req, &consumed), ParseStatus::kError);
}

TEST(HttpCodecTest, OversizedBodyIsRejected) {
  std::string wire = "GET /x HTTP/1.1\r\nContent-Length: " +
                     std::to_string(kMaxBodyBytes + 1) + "\r\n\r\n";
  WireRequest req;
  size_t consumed = 0;
  EXPECT_EQ(ParseRequest(wire, &req, &consumed), ParseStatus::kError);
}

TEST(HttpCodecTest, RequestSerializeParseRoundTrips) {
  http::HeaderMap headers;
  headers.Set("Host", "shop.example.com");
  headers.Set("X-SpeedKit-Client", "3");
  std::string wire =
      SerializeRequest(http::Method::kGet, "/api/records/9?v=1", headers);

  WireRequest req;
  size_t consumed = 0;
  ASSERT_EQ(ParseRequest(wire, &req, &consumed), ParseStatus::kOk);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(req.method, http::Method::kGet);
  EXPECT_EQ(req.target, "/api/records/9?v=1");
  EXPECT_EQ(req.headers.Get("Host"), "shop.example.com");
  EXPECT_EQ(req.headers.Get("X-SpeedKit-Client"), "3");
}

TEST(HttpCodecTest, ResponseSerializeParseRoundTrips) {
  http::HeaderMap headers;
  headers.Set("Content-Type", "application/json");
  headers.Set("X-SpeedKit-Source", "edge");
  std::string wire = SerializeResponse(200, headers, "{\"ok\":true}", true);

  WireResponse resp;
  size_t consumed = 0;
  ASSERT_EQ(ParseResponse(wire, &resp, &consumed), ParseStatus::kOk);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(resp.status_code, 200);
  EXPECT_EQ(resp.body, "{\"ok\":true}");
  EXPECT_EQ(resp.headers.Get("X-SpeedKit-Source"), "edge");
  EXPECT_TRUE(resp.keep_alive);

  // keep_alive=false emits Connection: close, and the parser honors it.
  std::string closing = SerializeResponse(421, headers, "elsewhere", false);
  ASSERT_EQ(ParseResponse(closing, &resp, &consumed), ParseStatus::kOk);
  EXPECT_EQ(resp.status_code, 421);
  EXPECT_FALSE(resp.keep_alive);
}

TEST(HttpCodecTest, SerializeOwnsFramingHeaders) {
  // Content-Length/Connection from the caller's map are ignored in favor
  // of the actual body size and keep-alive argument — a stale framing
  // header copied from a cached response must not corrupt the stream.
  http::HeaderMap headers;
  headers.Set("Content-Length", "9999");
  headers.Set("Connection", "close");
  std::string wire = SerializeResponse(200, headers, "four", true);

  WireResponse resp;
  size_t consumed = 0;
  ASSERT_EQ(ParseResponse(wire, &resp, &consumed), ParseStatus::kOk);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(resp.body, "four");
  EXPECT_TRUE(resp.keep_alive);
}

TEST(HttpCodecTest, StatusTextCoversTheCodesTheTierEmits) {
  EXPECT_EQ(StatusText(200), "OK");
  EXPECT_EQ(StatusText(400), "Bad Request");
  EXPECT_EQ(StatusText(421), "Misdirected Request");
  EXPECT_EQ(StatusText(405), "Method Not Allowed");
  EXPECT_EQ(StatusText(599), "Unknown");
}

}  // namespace
}  // namespace speedkit::net
