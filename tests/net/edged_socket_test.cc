// End-to-end exercise of the socketed edge node: a real EdgedServer on an
// ephemeral localhost port, spoken to over genuine TCP with the same
// codec the loadgen uses. Pins the protocol surface (admin endpoints,
// X-SpeedKit-* annotations, 400/405/421 behavior) and that the cached
// request path really runs the simulator's tiering — a repeat fetch by
// the same client comes back marked "browser".
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/random.h"
#include "http/url.h"
#include "net/edged_server.h"
#include "net/http_codec.h"
#include "net/tcp_listener.h"
#include "workload/catalog.h"

namespace speedkit::net {
namespace {

class EdgedSocketTest : public ::testing::Test {
 protected:
  void StartServer(EdgedConfig config) {
    config.host = "127.0.0.1";
    config.port = 0;
    server_ = std::make_unique<EdgedServer>(config);
    ASSERT_TRUE(server_->Start());
    server_thread_ = std::thread([this] { server_->Run(); });
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
      server_thread_.join();
    }
  }

  // Opens a fresh blocking connection to the server.
  int Connect() {
    int fd = TcpConnect("127.0.0.1", server_->port(), 2000);
    EXPECT_GE(fd, 0);
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
    return fd;
  }

  // One request/response over an established connection.
  WireResponse RoundTrip(int fd, std::string_view target,
                         uint64_t client_id = 0) {
    http::HeaderMap headers;
    headers.Set("Host", "shop.example.com");
    headers.Set("X-SpeedKit-Client", std::to_string(client_id));
    std::string wire = SerializeRequest(http::Method::kGet, target, headers);
    EXPECT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));
    return ReadResponse(fd);
  }

  WireResponse ReadResponse(int fd) {
    WireResponse resp;
    std::string buf;
    while (true) {
      size_t consumed = 0;
      ParseStatus st = ParseResponse(buf, &resp, &consumed);
      if (st == ParseStatus::kOk) break;
      EXPECT_NE(st, ParseStatus::kError) << buf.substr(0, 200);
      if (st == ParseStatus::kError) break;
      char chunk[16 * 1024];
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection died mid-response";
        break;
      }
      buf.append(chunk, static_cast<size_t>(n));
    }
    return resp;
  }

  // A product path the populated catalog serves (rank 0). ProductUrl is
  // rng-independent, so any Catalog instance with the same config agrees
  // with the server's.
  std::string ProductTarget(const EdgedConfig& config, size_t rank) {
    workload::Catalog catalog(config.catalog, Pcg32(1));
    std::string url = catalog.ProductUrl(rank);
    // Strip "https://shop.example.com" down to the origin-form target.
    return url.substr(url.find('/', std::string("https://").size()));
  }

  std::unique_ptr<EdgedServer> server_;
  std::thread server_thread_;
};

TEST_F(EdgedSocketTest, AdminEndpointsAnswer) {
  EdgedConfig config;
  config.catalog.num_products = 50;
  StartServer(config);
  int fd = Connect();

  WireResponse health = RoundTrip(fd, "/healthz");
  EXPECT_EQ(health.status_code, 200);
  EXPECT_EQ(health.body, "ok\n");

  WireResponse ring = RoundTrip(fd, "/ringz");
  EXPECT_EQ(ring.status_code, 200);
  EXPECT_NE(ring.body.find("\"edge-0\""), std::string::npos);

  WireResponse metrics = RoundTrip(fd, "/metricsz");
  EXPECT_EQ(metrics.status_code, 200);
  EXPECT_NE(metrics.body.find("\"net.requests\""), std::string::npos);
  EXPECT_NE(metrics.body.find("\"proxy\""), std::string::npos);
  ::close(fd);
}

TEST_F(EdgedSocketTest, CachedPathRunsTheSimulatorTiering) {
  EdgedConfig config;
  config.catalog.num_products = 50;
  StartServer(config);
  int fd = Connect();
  std::string target = ProductTarget(config, 0);

  WireResponse first = RoundTrip(fd, target, /*client_id=*/1);
  EXPECT_EQ(first.status_code, 200);
  EXPECT_FALSE(first.body.empty());
  ASSERT_TRUE(first.headers.Get("X-SpeedKit-Source").has_value());
  ASSERT_TRUE(first.headers.Get("X-SpeedKit-Latency-Us").has_value());

  // The same client asking again is served from its browser cache — the
  // whole point of running the real proxy behind the socket.
  WireResponse second = RoundTrip(fd, target, /*client_id=*/1);
  EXPECT_EQ(second.status_code, 200);
  EXPECT_EQ(second.headers.Get("X-SpeedKit-Source"), "browser");
  EXPECT_EQ(second.body, first.body);

  // A different client has no browser copy but shares the edge tier.
  WireResponse other = RoundTrip(fd, target, /*client_id=*/2);
  EXPECT_EQ(other.status_code, 200);
  EXPECT_NE(other.headers.Get("X-SpeedKit-Source"), "browser");
  ::close(fd);
}

TEST_F(EdgedSocketTest, ProtocolErrorsAreRejected) {
  EdgedConfig config;
  config.catalog.num_products = 10;
  StartServer(config);

  // Non-GET on a cached path: 405.
  int fd = Connect();
  http::HeaderMap headers;
  headers.Set("Host", "shop.example.com");
  std::string post =
      SerializeRequest(http::Method::kPost, "/api/records/x", headers);
  ASSERT_EQ(::send(fd, post.data(), post.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(post.size()));
  EXPECT_EQ(ReadResponse(fd).status_code, 405);
  ::close(fd);

  // Malformed bytes: 400 and the connection closes.
  fd = Connect();
  const char garbage[] = "NOT HTTP AT ALL\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, MSG_NOSIGNAL), 0);
  EXPECT_EQ(ReadResponse(fd).status_code, 400);
  char extra;
  EXPECT_EQ(::recv(fd, &extra, 1, 0), 0);  // EOF: server closed
  ::close(fd);

  // Missing Host: the cache identity cannot be built.
  fd = Connect();
  std::string hostless = "GET /api/records/x HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(fd, hostless.data(), hostless.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(hostless.size()));
  EXPECT_EQ(ReadResponse(fd).status_code, 400);
  ::close(fd);
}

TEST_F(EdgedSocketTest, MisroutedKeysGet421WhenRejecting) {
  EdgedConfig config;
  config.node_name = "edge-a";
  config.ring_nodes = {"edge-a", "edge-b"};
  config.reject_misrouted = true;
  config.catalog.num_products = 200;
  StartServer(config);

  // Find one key the ring assigns to us and one it assigns to edge-b.
  HashRing ring(config.ring_replicas);
  ring.AddNode("edge-a");
  ring.AddNode("edge-b");
  workload::Catalog catalog(config.catalog, Pcg32(1));
  std::string ours, theirs;
  for (size_t rank = 0; rank < 200 && (ours.empty() || theirs.empty());
       ++rank) {
    std::string url = catalog.ProductUrl(rank);
    std::string target = url.substr(url.find('/', 8));
    // Route on the cache key exactly as the server does.
    std::string key = http::Url::Parse(url)->CacheKey();
    (ring.NodeFor(key) == "edge-a" ? ours : theirs) = target;
  }
  ASSERT_FALSE(ours.empty());
  ASSERT_FALSE(theirs.empty());

  int fd = Connect();
  EXPECT_EQ(RoundTrip(fd, ours).status_code, 200);
  WireResponse rejected = RoundTrip(fd, theirs);
  EXPECT_EQ(rejected.status_code, 421);
  EXPECT_EQ(rejected.headers.Get("X-SpeedKit-Owner"), "edge-b");
  ::close(fd);
}

}  // namespace
}  // namespace speedkit::net
