#include "invalidation/query_matcher.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace speedkit::invalidation {
namespace {

storage::Record Product(std::string id, int64_t category, double price) {
  storage::Record r;
  r.id = std::move(id);
  r.version = 1;
  r.fields["category"] = category;
  r.fields["price"] = price;
  return r;
}

Query CategoryQuery(std::string id, int64_t category) {
  Query q;
  q.id = std::move(id);
  q.conditions.push_back({"category", Op::kEq, category});
  return q;
}

Query PriceQuery(std::string id, double below) {
  Query q;
  q.id = std::move(id);
  q.conditions.push_back({"price", Op::kLt, below});
  return q;
}

class QueryMatcherParam : public ::testing::TestWithParam<std::tuple<int, bool>> {
 protected:
  QueryMatcher MakeMatcher() {
    auto [partitions, use_index] = GetParam();
    return QueryMatcher(partitions, use_index);
  }
};

TEST_P(QueryMatcherParam, MatchesAffectedSubscriptionsExactly) {
  QueryMatcher matcher = MakeMatcher();
  ASSERT_TRUE(matcher.Subscribe(CategoryQuery("cat1", 1)).ok());
  ASSERT_TRUE(matcher.Subscribe(CategoryQuery("cat2", 2)).ok());
  ASSERT_TRUE(matcher.Subscribe(PriceQuery("cheap", 50.0)).ok());

  // Insert into category 1, price 20: affects cat1 and cheap, not cat2.
  storage::Record after = Product("p1", 1, 20);
  auto hits = matcher.MatchWrite(nullptr, after);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::string>{"cat1", "cheap"}));

  // Move it to category 2 (leaves cat1, enters cat2, stays cheap).
  storage::Record moved = Product("p1", 2, 20);
  hits = matcher.MatchWrite(&after, moved);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::string>{"cat1", "cat2", "cheap"}));

  // Price-only change within category 2, still cheap: cat2 (member
  // changed) and cheap fire; cat1 must not.
  storage::Record repriced = Product("p1", 2, 30);
  hits = matcher.MatchWrite(&moved, repriced);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::string>{"cat2", "cheap"}));
}

TEST_P(QueryMatcherParam, UnrelatedWriteMatchesNothing) {
  QueryMatcher matcher = MakeMatcher();
  ASSERT_TRUE(matcher.Subscribe(CategoryQuery("cat1", 1)).ok());
  storage::Record r = Product("p9", 7, 500);
  EXPECT_TRUE(matcher.MatchWrite(nullptr, r).empty());
}

TEST_P(QueryMatcherParam, UnsubscribeStopsMatching) {
  QueryMatcher matcher = MakeMatcher();
  ASSERT_TRUE(matcher.Subscribe(CategoryQuery("cat1", 1)).ok());
  ASSERT_TRUE(matcher.Unsubscribe("cat1").ok());
  EXPECT_EQ(matcher.subscription_count(), 0u);
  storage::Record r = Product("p1", 1, 20);
  EXPECT_TRUE(matcher.MatchWrite(nullptr, r).empty());
}

TEST_P(QueryMatcherParam, ResubscribeAfterUnsubscribeReusesSlot) {
  QueryMatcher matcher = MakeMatcher();
  ASSERT_TRUE(matcher.Subscribe(CategoryQuery("a", 1)).ok());
  ASSERT_TRUE(matcher.Unsubscribe("a").ok());
  ASSERT_TRUE(matcher.Subscribe(CategoryQuery("a", 2)).ok());
  storage::Record r = Product("p1", 2, 20);
  auto hits = matcher.MatchWrite(nullptr, r);
  EXPECT_EQ(hits, std::vector<std::string>{"a"});
}

INSTANTIATE_TEST_SUITE_P(
    Configs, QueryMatcherParam,
    ::testing::Combine(::testing::Values(1, 4, 16),
                       ::testing::Values(false, true)));

TEST(QueryMatcherTest, DuplicateSubscribeFails) {
  QueryMatcher matcher(4, true);
  ASSERT_TRUE(matcher.Subscribe(CategoryQuery("q", 1)).ok());
  EXPECT_EQ(matcher.Subscribe(CategoryQuery("q", 2)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(matcher.subscription_count(), 1u);
}

TEST(QueryMatcherTest, UnsubscribeMissingFails) {
  QueryMatcher matcher(4, true);
  EXPECT_TRUE(matcher.Unsubscribe("ghost").IsNotFound());
}

TEST(QueryMatcherTest, IndexPrunesCandidateProbes) {
  // 1000 equality subscriptions on distinct categories: the index should
  // probe ~1 candidate per write instead of all 1000.
  QueryMatcher indexed(1, /*use_index=*/true);
  QueryMatcher scanning(1, /*use_index=*/false);
  for (int i = 0; i < 1000; ++i) {
    std::string id = "cat" + std::to_string(i);
    ASSERT_TRUE(indexed.Subscribe(CategoryQuery(id, i)).ok());
    ASSERT_TRUE(scanning.Subscribe(CategoryQuery(id, i)).ok());
  }
  storage::Record r = Product("p1", 500, 20);
  auto hits_indexed = indexed.MatchWrite(nullptr, r);
  auto hits_scanning = scanning.MatchWrite(nullptr, r);
  EXPECT_EQ(hits_indexed, hits_scanning);
  EXPECT_EQ(hits_indexed, std::vector<std::string>{"cat500"});
  EXPECT_LT(indexed.stats().candidates_probed, 20u);
  EXPECT_EQ(scanning.stats().candidates_probed, 1000u);
}

TEST(QueryMatcherTest, IndexAndScanAgreeOnMixedPredicates) {
  QueryMatcher indexed(4, true);
  QueryMatcher scanning(4, false);
  for (int i = 0; i < 50; ++i) {
    Query eq = CategoryQuery("eq" + std::to_string(i), i % 10);
    Query lt = PriceQuery("lt" + std::to_string(i), 10.0 * i);
    ASSERT_TRUE(indexed.Subscribe(eq).ok());
    ASSERT_TRUE(indexed.Subscribe(lt).ok());
    ASSERT_TRUE(scanning.Subscribe(eq).ok());
    ASSERT_TRUE(scanning.Subscribe(lt).ok());
  }
  storage::Record before = Product("p1", 3, 120);
  storage::Record after = Product("p1", 7, 80);
  auto a = indexed.MatchWrite(&before, after);
  auto b = scanning.MatchWrite(&before, after);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(QueryMatcherTest, StatsCountHits) {
  QueryMatcher matcher(2, true);
  ASSERT_TRUE(matcher.Subscribe(CategoryQuery("c", 1)).ok());
  storage::Record r = Product("p1", 1, 5);
  matcher.MatchWrite(nullptr, r);
  matcher.MatchWrite(nullptr, r);
  EXPECT_EQ(matcher.stats().writes_matched, 2u);
  EXPECT_EQ(matcher.stats().hits, 2u);
}

}  // namespace
}  // namespace speedkit::invalidation
