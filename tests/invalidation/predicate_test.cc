#include "invalidation/predicate.h"

#include <gtest/gtest.h>

namespace speedkit::invalidation {
namespace {

storage::Record Product(int64_t category, double price,
                        std::string title = "Widget") {
  storage::Record r;
  r.id = "p";
  r.version = 1;
  r.fields["category"] = category;
  r.fields["price"] = price;
  r.fields["title"] = std::move(title);
  return r;
}

TEST(ConditionTest, EqualityOnInt) {
  Condition c{"category", Op::kEq, static_cast<int64_t>(3)};
  EXPECT_TRUE(c.Matches(Product(3, 10)));
  EXPECT_FALSE(c.Matches(Product(4, 10)));
}

TEST(ConditionTest, NumericComparisons) {
  EXPECT_TRUE((Condition{"price", Op::kLt, 20.0}).Matches(Product(1, 10)));
  EXPECT_FALSE((Condition{"price", Op::kLt, 10.0}).Matches(Product(1, 10)));
  EXPECT_TRUE((Condition{"price", Op::kLe, 10.0}).Matches(Product(1, 10)));
  EXPECT_TRUE((Condition{"price", Op::kGt, 5.0}).Matches(Product(1, 10)));
  EXPECT_TRUE((Condition{"price", Op::kGe, 10.0}).Matches(Product(1, 10)));
  EXPECT_TRUE((Condition{"price", Op::kNe, 9.0}).Matches(Product(1, 10)));
}

TEST(ConditionTest, IntVsDoubleCrossType) {
  // price stored as double, compared against int literal.
  Condition c{"price", Op::kEq, static_cast<int64_t>(10)};
  EXPECT_TRUE(c.Matches(Product(1, 10.0)));
}

TEST(ConditionTest, MissingFieldNeverMatches) {
  Condition c{"ghost", Op::kEq, static_cast<int64_t>(1)};
  EXPECT_FALSE(c.Matches(Product(1, 10)));
  Condition ne{"ghost", Op::kNe, static_cast<int64_t>(1)};
  EXPECT_FALSE(ne.Matches(Product(1, 10)));
}

TEST(ConditionTest, IncomparableTypesOnlyNeHolds) {
  Condition eq{"title", Op::kEq, static_cast<int64_t>(1)};
  EXPECT_FALSE(eq.Matches(Product(1, 10)));
  Condition ne{"title", Op::kNe, static_cast<int64_t>(1)};
  EXPECT_TRUE(ne.Matches(Product(1, 10)));
}

TEST(ConditionTest, ContainsOnStrings) {
  Condition c{"title", Op::kContains, std::string("idg")};
  EXPECT_TRUE(c.Matches(Product(1, 10, "Widget")));
  EXPECT_FALSE(c.Matches(Product(1, 10, "Gadget")));
  // Contains on non-string field: no match.
  Condition n{"price", Op::kContains, std::string("1")};
  EXPECT_FALSE(n.Matches(Product(1, 10)));
}

TEST(QueryTest, ConjunctionSemantics) {
  Query q;
  q.id = "sale-shoes";
  q.conditions.push_back({"category", Op::kEq, static_cast<int64_t>(3)});
  q.conditions.push_back({"price", Op::kLt, 50.0});
  EXPECT_TRUE(q.Matches(Product(3, 20)));
  EXPECT_FALSE(q.Matches(Product(3, 80)));
  EXPECT_FALSE(q.Matches(Product(4, 20)));
}

TEST(QueryTest, EmptyQueryMatchesAllLiveRecords) {
  Query q;
  q.id = "all";
  EXPECT_TRUE(q.Matches(Product(1, 1)));
  storage::Record dead = Product(1, 1);
  dead.deleted = true;
  EXPECT_FALSE(q.Matches(dead));
}

TEST(QueryTest, AffectedByEnterLeaveAndInPlace) {
  Query q;
  q.id = "cat3";
  q.conditions.push_back({"category", Op::kEq, static_cast<int64_t>(3)});

  storage::Record in3 = Product(3, 10);
  storage::Record in4 = Product(4, 10);
  storage::Record in3b = Product(3, 12);

  EXPECT_TRUE(q.AffectedBy(&in4, in3));    // enters result
  EXPECT_TRUE(q.AffectedBy(&in3, in4));    // leaves result
  EXPECT_TRUE(q.AffectedBy(&in3, in3b));   // member changed in place
  EXPECT_FALSE(q.AffectedBy(&in4, in4));   // unrelated write
  EXPECT_TRUE(q.AffectedBy(nullptr, in3)); // insert into result
  EXPECT_FALSE(q.AffectedBy(nullptr, in4));// unrelated insert
}

TEST(QueryTest, AffectedByDelete) {
  Query q;
  q.id = "cat3";
  q.conditions.push_back({"category", Op::kEq, static_cast<int64_t>(3)});
  storage::Record before = Product(3, 10);
  storage::Record tombstone = before;
  tombstone.deleted = true;
  EXPECT_TRUE(q.AffectedBy(&before, tombstone));
}

TEST(QueryTest, ToStringIsReadable) {
  Query q;
  q.id = "x";
  q.conditions.push_back({"price", Op::kLt, 50.0});
  EXPECT_NE(q.ToString().find("price < 50"), std::string::npos);
  Query all;
  all.id = "all";
  EXPECT_NE(all.ToString().find("*"), std::string::npos);
}

}  // namespace
}  // namespace speedkit::invalidation
