// Randomized differential test: the indexed, partitioned QueryMatcher
// against a brute-force evaluation of every subscription, across random
// predicates and write streams. Any pruning bug in the equality index
// shows up as a mismatch here.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "common/random.h"
#include "invalidation/query_matcher.h"

namespace speedkit::invalidation {
namespace {

storage::FieldValue RandomValue(Pcg32& rng) {
  switch (rng.NextBounded(4)) {
    case 0:
      return static_cast<int64_t>(rng.NextBounded(8));
    case 1:
      return rng.Uniform(0, 100.0);
    case 2:
      return std::string("s") + std::to_string(rng.NextBounded(5));
    default:
      return rng.WithProbability(0.5);
  }
}

storage::Record RandomRecord(Pcg32& rng, uint64_t version) {
  static const char* kFields[] = {"category", "price", "brand", "flag"};
  storage::Record r;
  r.id = "p" + std::to_string(rng.NextBounded(10));
  r.version = version;
  for (const char* field : kFields) {
    if (rng.WithProbability(0.8)) {
      r.fields[field] = RandomValue(rng);
    }
  }
  return r;
}

Query RandomQuery(Pcg32& rng, int id) {
  static const char* kFields[] = {"category", "price", "brand", "flag"};
  static const Op kOps[] = {Op::kEq,  Op::kNe, Op::kLt, Op::kLe,
                            Op::kGt, Op::kGe, Op::kContains};
  Query q;
  q.id = "q" + std::to_string(id);
  uint32_t conditions = 1 + rng.NextBounded(3);
  for (uint32_t i = 0; i < conditions; ++i) {
    Condition c;
    c.field = kFields[rng.NextBounded(4)];
    c.op = kOps[rng.NextBounded(7)];
    c.value = RandomValue(rng);
    q.conditions.push_back(std::move(c));
  }
  return q;
}

class MatcherFuzz
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(MatcherFuzz, IndexedMatchEqualsBruteForce) {
  auto [partitions, seed] = GetParam();
  Pcg32 rng(seed);

  std::vector<Query> queries;
  QueryMatcher matcher(partitions, /*use_index=*/true);
  for (int i = 0; i < 200; ++i) {
    queries.push_back(RandomQuery(rng, i));
    ASSERT_TRUE(matcher.Subscribe(queries.back()).ok());
  }

  for (int write = 0; write < 500; ++write) {
    bool has_before = rng.WithProbability(0.7);
    storage::Record before = RandomRecord(rng, 1);
    storage::Record after = RandomRecord(rng, 2);
    after.id = before.id;  // same record, new image
    if (rng.WithProbability(0.1)) after.deleted = true;

    std::vector<std::string> got =
        matcher.MatchWrite(has_before ? &before : nullptr, after);
    std::sort(got.begin(), got.end());

    std::vector<std::string> expected;
    for (const Query& q : queries) {
      if (q.AffectedBy(has_before ? &before : nullptr, after)) {
        expected.push_back(q.id);
      }
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(got, expected) << "write " << write << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PartitionsAndSeeds, MatcherFuzz,
    ::testing::Combine(::testing::Values(1, 4, 16),
                       ::testing::Values(11u, 22u, 33u)));

TEST(MatcherFuzzTest, SubscribeUnsubscribeChurnStaysConsistent) {
  Pcg32 rng(77);
  QueryMatcher matcher(4, true);
  std::map<std::string, Query> live;
  for (int round = 0; round < 300; ++round) {
    if (live.empty() || rng.WithProbability(0.6)) {
      Query q = RandomQuery(rng, round);
      if (matcher.Subscribe(q).ok()) live[q.id] = q;
    } else {
      auto it = live.begin();
      std::advance(it, rng.NextBounded(static_cast<uint32_t>(live.size())));
      ASSERT_TRUE(matcher.Unsubscribe(it->first).ok());
      live.erase(it);
    }
    ASSERT_EQ(matcher.subscription_count(), live.size());

    storage::Record after = RandomRecord(rng, 2);
    std::vector<std::string> got = matcher.MatchWrite(nullptr, after);
    std::sort(got.begin(), got.end());
    std::vector<std::string> expected;
    for (const auto& [id, q] : live) {
      if (q.AffectedBy(nullptr, after)) expected.push_back(id);
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(got, expected) << "round " << round;
  }
}

}  // namespace
}  // namespace speedkit::invalidation
