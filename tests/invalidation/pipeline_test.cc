#include "invalidation/pipeline.h"

#include <gtest/gtest.h>

#include "coherence/delta_atomic.h"

namespace speedkit::invalidation {
namespace {

http::HttpResponse CacheableResponse(SimTime now) {
  http::HttpResponse resp;
  resp.status_code = 200;
  resp.body = "x";
  resp.headers.Set("Cache-Control", "public, max-age=300");
  resp.generated_at = now;
  return resp;
}

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : events_(&clock_),
        cdn_(3, 0),
        protocol_(SketchConfig()),
        pipeline_(Config(), &clock_, &events_, &cdn_, &protocol_, Pcg32(7)) {
    pipeline_.AttachTo(&store_);
  }

  static PipelineConfig Config() {
    PipelineConfig config;
    config.purge_median_delay = Duration::Millis(80);
    config.purge_log_sigma = 0.0;  // deterministic purge timing
    return config;
  }

  static coherence::CoherenceConfig SketchConfig() {
    coherence::CoherenceConfig config;
    config.sketch_capacity = 1000;
    config.sketch_fpr = 0.01;
    return config;
  }

  void WriteProduct(const std::string& id, int64_t category, double price) {
    store_.Update(id,
                  {{"category", category}, {"price", price}},
                  clock_.Now());
  }

  sim::SimClock clock_;
  sim::EventQueue events_;
  cache::Cdn cdn_;
  coherence::DeltaAtomicProtocol protocol_;
  storage::ObjectStore store_;
  InvalidationPipeline pipeline_;
  sketch::CacheSketch& sketch_ = *protocol_.sketch();
};

TEST_F(PipelineTest, WriteSchedulesPurgeOnEveryEdge) {
  std::string key = RecordCacheKey("p1");
  for (int i = 0; i < 3; ++i) {
    cdn_.edge(i).Store(key, CacheableResponse(clock_.Now()), clock_.Now());
  }
  WriteProduct("p1", 1, 10.0);
  EXPECT_EQ(pipeline_.stats().purges_scheduled, 3u);
  // Purges have not landed yet.
  EXPECT_EQ(pipeline_.stats().purges_effective, 0u);
  events_.RunUntil(clock_.Now() + Duration::Millis(100));
  EXPECT_EQ(pipeline_.stats().purges_effective, 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cdn_.edge(i).Lookup(key, clock_.Now()).outcome,
              cache::LookupOutcome::kMiss);
  }
}

TEST_F(PipelineTest, WriteEntersSketchUntilStaleHorizon) {
  std::string key = RecordCacheKey("p1");
  // A copy is outstanding until t=200s.
  pipeline_.expiry_book().RecordServed(key, SimTime::Origin() +
                                                Duration::Seconds(200));
  WriteProduct("p1", 1, 10.0);
  EXPECT_TRUE(sketch_.Contains(key));
  // Key must stay in snapshots until the horizon passes.
  EXPECT_TRUE(sketch_.Snapshot(SimTime::Origin() + Duration::Seconds(199))
                  .MightContain(key));
  EXPECT_FALSE(sketch_.Snapshot(SimTime::Origin() + Duration::Seconds(201))
                   .MightContain(key));
}

TEST_F(PipelineTest, SketchHorizonCoversPurgePropagation) {
  // No outstanding client copies, but purges take 80ms: the key must stay
  // in the sketch at least that long (an unpurged edge could re-serve it).
  WriteProduct("p1", 1, 10.0);
  std::string key = RecordCacheKey("p1");
  EXPECT_TRUE(sketch_.Contains(key));
  sketch_.ExpireUntil(clock_.Now() + Duration::Millis(79));
  EXPECT_TRUE(sketch_.Contains(key));
  sketch_.ExpireUntil(clock_.Now() + Duration::Millis(81));
  EXPECT_FALSE(sketch_.Contains(key));
}

TEST_F(PipelineTest, AffectedQueryResultsAreInvalidated) {
  Query q;
  q.id = "cat1";
  q.conditions.push_back({"category", Op::kEq, static_cast<int64_t>(1)});
  std::string qkey = QueryCacheKey("cat1");
  ASSERT_TRUE(pipeline_.WatchQuery(q, qkey).ok());
  cdn_.edge(0).Store(qkey, CacheableResponse(clock_.Now()), clock_.Now());
  pipeline_.expiry_book().RecordServed(qkey, SimTime::Origin() +
                                                 Duration::Seconds(100));

  WriteProduct("p1", 1, 10.0);  // enters cat1
  events_.RunUntil(clock_.Now() + Duration::Seconds(1));
  EXPECT_EQ(cdn_.edge(0).Lookup(qkey, clock_.Now()).outcome,
            cache::LookupOutcome::kMiss);
  EXPECT_TRUE(sketch_.Contains(qkey));
}

TEST_F(PipelineTest, UnrelatedQueryNotInvalidated) {
  Query q;
  q.id = "cat9";
  q.conditions.push_back({"category", Op::kEq, static_cast<int64_t>(9)});
  ASSERT_TRUE(pipeline_.WatchQuery(q, QueryCacheKey("cat9")).ok());
  WriteProduct("p1", 1, 10.0);
  EXPECT_FALSE(sketch_.Contains(QueryCacheKey("cat9")));
  // Record key itself is invalidated exactly once.
  EXPECT_EQ(pipeline_.stats().keys_invalidated, 1u);
}

TEST_F(PipelineTest, UnwatchStopsInvalidation) {
  Query q;
  q.id = "cat1";
  q.conditions.push_back({"category", Op::kEq, static_cast<int64_t>(1)});
  ASSERT_TRUE(pipeline_.WatchQuery(q, QueryCacheKey("cat1")).ok());
  ASSERT_TRUE(pipeline_.UnwatchQuery("cat1").ok());
  WriteProduct("p1", 1, 10.0);
  EXPECT_FALSE(sketch_.Contains(QueryCacheKey("cat1")));
}

TEST_F(PipelineTest, CustomRecordKeyMapper) {
  pipeline_.SetRecordKeyMapper([](const storage::Record& r) {
    return std::vector<std::string>{"custom://" + r.id,
                                    "custom://" + r.id + "/alt"};
  });
  WriteProduct("p1", 1, 10.0);
  EXPECT_TRUE(sketch_.Contains("custom://p1"));
  EXPECT_TRUE(sketch_.Contains("custom://p1/alt"));
  EXPECT_EQ(pipeline_.stats().keys_invalidated, 2u);
}

TEST_F(PipelineTest, PropagationLatencyRecorded) {
  WriteProduct("p1", 1, 10.0);
  EXPECT_EQ(pipeline_.propagation_latency_us().count(), 1u);
  // With zero jitter: last purge = median delay.
  EXPECT_NEAR(static_cast<double>(
                  pipeline_.propagation_latency_us().max()),
              80000.0, 2600.0);
}

TEST_F(PipelineTest, TotalPurgeLossDropsDeliveriesButKeepsSketchCoverage) {
  sim::FaultScheduleConfig fc;
  fc.purge_loss_probability = 1.0;
  sim::FaultSchedule faults(fc);
  pipeline_.SetFaultSchedule(&faults);

  std::string key = RecordCacheKey("p1");
  for (int i = 0; i < 3; ++i) {
    cdn_.edge(i).Store(key, CacheableResponse(clock_.Now()), clock_.Now());
  }
  // A client copy is outstanding until t=200s — the ExpiryBook, not purge
  // acknowledgements, is what sizes the sketch horizon.
  pipeline_.expiry_book().RecordServed(
      key, SimTime::Origin() + Duration::Seconds(200));
  WriteProduct("p1", 1, 10.0);
  EXPECT_EQ(pipeline_.stats().purges_scheduled, 3u);
  EXPECT_EQ(pipeline_.stats().purges_dropped, 3u);
  EXPECT_EQ(cdn_.TotalFaultStats().purges_dropped, 3u);
  events_.RunUntil(clock_.Now() + Duration::Seconds(1));
  // No purge ever landed: the edges still hold the stale copies...
  EXPECT_EQ(pipeline_.stats().purges_effective, 0u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(cdn_.edge(i).Lookup(key, clock_.Now()).outcome,
              cache::LookupOutcome::kMiss);
  }
  // ...but the sketch still flags the key for the outstanding copy's full
  // TTL, so sketch-checking clients revalidate regardless — this is why
  // Δ-atomicity survives ANY purge-loss rate.
  EXPECT_TRUE(sketch_.Contains(key));
  EXPECT_TRUE(sketch_.Snapshot(SimTime::Origin() + Duration::Seconds(199))
                  .MightContain(key));
}

TEST_F(PipelineTest, DelayedPurgesLandOnTheSlowPath) {
  sim::FaultScheduleConfig fc;
  fc.purge_delay_probability = 1.0;
  fc.purge_delay_factor = 10.0;  // median 80ms -> 800ms
  sim::FaultSchedule faults(fc);
  pipeline_.SetFaultSchedule(&faults);

  std::string key = RecordCacheKey("p1");
  for (int i = 0; i < 3; ++i) {
    cdn_.edge(i).Store(key, CacheableResponse(clock_.Now()), clock_.Now());
  }
  WriteProduct("p1", 1, 10.0);
  EXPECT_EQ(pipeline_.stats().purges_delayed, 3u);
  EXPECT_EQ(cdn_.TotalFaultStats().purges_delayed, 3u);
  // At the normal landing time the keys are still cached...
  events_.RunUntil(clock_.Now() + Duration::Millis(100));
  EXPECT_EQ(pipeline_.stats().purges_effective, 0u);
  // ...and the slow path lands at 10x the median delay.
  events_.RunUntil(clock_.Now() + Duration::Millis(800));
  EXPECT_EQ(pipeline_.stats().purges_effective, 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cdn_.edge(i).Lookup(key, clock_.Now()).outcome,
              cache::LookupOutcome::kMiss);
  }
}

TEST_F(PipelineTest, ZeroProbabilityScheduleChangesNothing) {
  sim::FaultSchedule faults((sim::FaultScheduleConfig()));
  pipeline_.SetFaultSchedule(&faults);
  std::string key = RecordCacheKey("p1");
  for (int i = 0; i < 3; ++i) {
    cdn_.edge(i).Store(key, CacheableResponse(clock_.Now()), clock_.Now());
  }
  WriteProduct("p1", 1, 10.0);
  events_.RunUntil(clock_.Now() + Duration::Millis(100));
  EXPECT_EQ(pipeline_.stats().purges_dropped, 0u);
  EXPECT_EQ(pipeline_.stats().purges_delayed, 0u);
  EXPECT_EQ(pipeline_.stats().purges_effective, 3u);
  // Same landing time as the no-schedule runs (zero probabilities draw no
  // RNG, so timing draws stay aligned).
  EXPECT_NEAR(
      static_cast<double>(pipeline_.propagation_latency_us().max()),
      80000.0, 2600.0);
}

TEST(PipelineStandaloneTest, WorksWithoutSketchAndCdn) {
  sim::SimClock clock;
  sim::EventQueue events(&clock);
  PipelineConfig config;
  InvalidationPipeline pipeline(config, &clock, &events, nullptr, nullptr,
                                Pcg32(1));
  storage::Record r;
  r.id = "p1";
  r.version = 1;
  pipeline.OnWrite(nullptr, r);  // must not crash
  EXPECT_EQ(pipeline.stats().keys_invalidated, 1u);
  EXPECT_EQ(pipeline.stats().purges_scheduled, 0u);
}

}  // namespace
}  // namespace speedkit::invalidation
