#include "invalidation/expiry_book.h"

#include <gtest/gtest.h>

namespace speedkit::invalidation {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

TEST(ExpiryBookTest, UnknownKeyHasNoOutstandingCopies) {
  ExpiryBook book;
  EXPECT_EQ(book.LatestExpiry("k", At(10)), At(10));
}

TEST(ExpiryBookTest, RecordsLatestDeadline) {
  ExpiryBook book;
  book.RecordServed("k", At(60));
  EXPECT_EQ(book.LatestExpiry("k", At(10)), At(60));
}

TEST(ExpiryBookTest, KeepsMaxAcrossServes) {
  ExpiryBook book;
  book.RecordServed("k", At(60));
  book.RecordServed("k", At(30));  // earlier deadline must not shrink
  EXPECT_EQ(book.LatestExpiry("k", At(10)), At(60));
  book.RecordServed("k", At(90));
  EXPECT_EQ(book.LatestExpiry("k", At(10)), At(90));
}

TEST(ExpiryBookTest, ExpiredDeadlineCollapsesToNow) {
  ExpiryBook book;
  book.RecordServed("k", At(60));
  EXPECT_EQ(book.LatestExpiry("k", At(70)), At(70));
}

TEST(ExpiryBookTest, CompactDropsExpiredOnly) {
  ExpiryBook book;
  book.RecordServed("old", At(10));
  book.RecordServed("live", At(100));
  book.CompactUntil(At(50));
  EXPECT_EQ(book.size(), 1u);
  EXPECT_EQ(book.LatestExpiry("live", At(50)), At(100));
}

TEST(ExpiryBookTest, KeysAreIndependent) {
  ExpiryBook book;
  book.RecordServed("a", At(60));
  book.RecordServed("b", At(120));
  EXPECT_EQ(book.LatestExpiry("a", At(0)), At(60));
  EXPECT_EQ(book.LatestExpiry("b", At(0)), At(120));
}

}  // namespace
}  // namespace speedkit::invalidation
