#include "sim/network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace speedkit::sim {
namespace {

TEST(NetworkTest, InstantConfigIsZeroCost) {
  Network net(NetworkConfig::Instant(), Pcg32(1));
  EXPECT_EQ(net.SampleRtt(Link::kClientEdge), Duration::Zero());
  EXPECT_EQ(net.RequestTime(Link::kClientOrigin, 1 << 20).micros(), 0);
}

TEST(NetworkTest, MedianRttRoughlyMatchesSpec) {
  NetworkConfig config;
  config.client_edge = LinkSpec{Duration::Millis(20), 0.25, 8.0e6};
  Network net(config, Pcg32(7));
  std::vector<int64_t> samples;
  for (int i = 0; i < 10001; ++i) {
    samples.push_back(net.SampleRtt(Link::kClientEdge).micros());
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  EXPECT_NEAR(static_cast<double>(samples[samples.size() / 2]), 20000.0,
              1000.0);
}

TEST(NetworkTest, ZeroSigmaIsDeterministic) {
  NetworkConfig config;
  config.client_origin = LinkSpec{Duration::Millis(100), 0.0, 4.0e6};
  Network net(config, Pcg32(7));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(net.SampleRtt(Link::kClientOrigin), Duration::Millis(100));
  }
}

TEST(NetworkTest, RttHasHeavyRightTail) {
  NetworkConfig config;
  config.edge_origin = LinkSpec{Duration::Millis(80), 0.4, 12.0e6};
  Network net(config, Pcg32(11));
  int above_2x = 0;
  for (int i = 0; i < 10000; ++i) {
    if (net.SampleRtt(Link::kEdgeOrigin) > Duration::Millis(160)) ++above_2x;
  }
  // Lognormal(0.4): P(X > 2*median) ~ 4%; a symmetric dist would give ~0.
  EXPECT_GT(above_2x, 100);
  EXPECT_LT(above_2x, 1500);
}

TEST(NetworkTest, TransferTimeScalesWithBytes) {
  NetworkConfig config;
  config.client_edge.bandwidth_bytes_per_sec = 1.0e6;  // 1 MB/s
  Network net(config, Pcg32(3));
  EXPECT_EQ(net.TransferTime(Link::kClientEdge, 1000000).seconds(), 1.0);
  EXPECT_EQ(net.TransferTime(Link::kClientEdge, 0).micros(), 0);
}

TEST(NetworkTest, RequestTimeIsRttPlusTransfer) {
  NetworkConfig config;
  config.client_origin = LinkSpec{Duration::Millis(100), 0.0, 1.0e6};
  Network net(config, Pcg32(3));
  Duration t = net.RequestTime(Link::kClientOrigin, 500000);
  EXPECT_EQ(t, Duration::Millis(100) + Duration::Millis(500));
}

TEST(NetworkTest, LinksHaveIndependentSpecs) {
  NetworkConfig config;  // defaults: edge nearer than origin
  Network net(config, Pcg32(3));
  EXPECT_LT(net.spec(Link::kClientEdge).median_rtt,
            net.spec(Link::kClientOrigin).median_rtt);
}

}  // namespace
}  // namespace speedkit::sim
