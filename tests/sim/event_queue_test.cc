#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace speedkit::sim {
namespace {

TEST(SimClockTest, StartsAtOriginAndAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.Now(), SimTime::Origin());
  clock.Advance(Duration::Seconds(5));
  EXPECT_EQ(clock.Now().seconds(), 5.0);
  clock.AdvanceTo(SimTime::FromMicros(3000000));  // backwards: ignored
  EXPECT_EQ(clock.Now().seconds(), 5.0);
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  SimClock clock;
  EventQueue q(&clock);
  std::vector<int> order;
  q.At(SimTime::FromMicros(300), [&] { order.push_back(3); });
  q.At(SimTime::FromMicros(100), [&] { order.push_back(1); });
  q.At(SimTime::FromMicros(200), [&] { order.push_back(2); });
  EXPECT_EQ(q.RunAll(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.Now().micros(), 300);
}

TEST(EventQueueTest, TiesBreakInInsertionOrder) {
  SimClock clock;
  EventQueue q(&clock);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.At(SimTime::FromMicros(10), [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, PastEventsClampToNow) {
  SimClock clock;
  clock.Advance(Duration::Seconds(10));
  EventQueue q(&clock);
  bool ran = false;
  q.At(SimTime::FromMicros(5), [&] { ran = true; });  // in the past
  q.RunUntil(clock.Now());
  EXPECT_TRUE(ran);
  EXPECT_EQ(clock.Now().seconds(), 10.0);
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  SimClock clock;
  EventQueue q(&clock);
  int ran = 0;
  q.At(SimTime::FromMicros(100), [&] { ran++; });
  q.At(SimTime::FromMicros(900), [&] { ran++; });
  EXPECT_EQ(q.RunUntil(SimTime::FromMicros(500)), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(clock.Now().micros(), 500);  // advanced to the boundary
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  SimClock clock;
  EventQueue q(&clock);
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 5) q.After(Duration::Millis(10), chain);
  };
  q.After(Duration::Millis(10), chain);
  q.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(clock.Now().micros(), 50000);
}

// Locks the documented RunUntil/RunAll clock semantics: a finite `until`
// advances the clock to the boundary even when the queue drains early; a
// drain (until == SimTime::Max()) leaves the clock at the last event's
// fire time — there is no meaningful "end" to advance to.
TEST(EventQueueTest, FiniteRunUntilAdvancesClockPastADrainedQueue) {
  SimClock clock;
  EventQueue q(&clock);
  q.At(SimTime::FromMicros(100), [] {});
  EXPECT_EQ(q.RunUntil(SimTime::FromMicros(700)), 1u);
  EXPECT_EQ(clock.Now().micros(), 700);  // boundary, not the last event
  // An empty queue still advances to the boundary.
  EXPECT_EQ(q.RunUntil(SimTime::FromMicros(900)), 0u);
  EXPECT_EQ(clock.Now().micros(), 900);
}

TEST(EventQueueTest, RunAllLeavesClockAtLastEvent) {
  SimClock clock;
  EventQueue q(&clock);
  q.At(SimTime::FromMicros(100), [] {});
  q.At(SimTime::FromMicros(250), [] {});
  EXPECT_EQ(q.RunAll(), 2u);
  EXPECT_EQ(clock.Now().micros(), 250);  // not SimTime::Max()
  // Draining an already-empty queue moves nothing.
  EXPECT_EQ(q.RunAll(), 0u);
  EXPECT_EQ(clock.Now().micros(), 250);
}

TEST(EventQueueTest, RunUntilInThePastIsANoOp) {
  SimClock clock;
  clock.Advance(Duration::Seconds(10));
  EventQueue q(&clock);
  bool ran = false;
  q.After(Duration::Seconds(1), [&] { ran = true; });
  EXPECT_EQ(q.RunUntil(SimTime::FromMicros(5)), 0u);  // before now
  EXPECT_FALSE(ran);
  EXPECT_EQ(clock.Now().seconds(), 10.0);  // clock never moves backwards
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, AfterUsesCurrentClock) {
  SimClock clock;
  clock.Advance(Duration::Seconds(100));
  EventQueue q(&clock);
  SimTime fired;
  q.After(Duration::Seconds(2), [&] { fired = clock.Now(); });
  q.RunAll();
  EXPECT_EQ(fired.seconds(), 102.0);
}

}  // namespace
}  // namespace speedkit::sim
