// Tests for the hierarchical timing wheel behind sim::EventQueue.
//
// The wheel's contract is that it is *indistinguishable* from the binary
// heap it replaced: events fire in exactly (time, sequence) order. The
// differential tests here keep the old heap alive as an oracle and drive
// both schedulers through identical randomized programs — any divergence
// in firing order or clock movement is a determinism regression that
// would silently change every experiment fingerprint.
#include "sim/timing_wheel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <random>
#include <vector>

#include "sim/event_queue.h"

namespace speedkit::sim {
namespace {

// The scheduler the wheel replaced, verbatim: the reference oracle.
class HeapQueue {
 public:
  explicit HeapQueue(SimClock* clock) : clock_(clock) {}

  void At(SimTime at, std::function<void()> fn) {
    if (at < clock_->Now()) at = clock_->Now();
    heap_.push(Event{at, next_seq_++, std::move(fn)});
  }

  size_t RunUntil(SimTime until) {
    size_t ran = 0;
    while (!heap_.empty() && heap_.top().at <= until) {
      Event ev = heap_.top();
      heap_.pop();
      clock_->AdvanceTo(ev.at);
      ev.fn();
      ++ran;
    }
    if (until != SimTime::Max()) clock_->AdvanceTo(until);
    return ran;
  }

  size_t RunAll() { return RunUntil(SimTime::Max()); }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  SimClock* clock_;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

// One fired event, as observed from the outside.
struct Fired {
  int id;
  int64_t at_micros;
  bool operator==(const Fired& o) const {
    return id == o.id && at_micros == o.at_micros;
  }
};

TEST(TimingWheelTest, SameTickFifoMatchesReferenceHeap) {
  SimClock wheel_clock, heap_clock;
  EventQueue wheel(&wheel_clock);
  HeapQueue heap(&heap_clock);
  std::vector<int> wheel_order, heap_order;
  // Many events on one tick, interleaved with neighbors on adjacent ticks
  // across a level-0 slot-wrap boundary (255 -> 256).
  const int64_t kTicks[] = {255, 256, 255, 256, 255, 255, 256, 255};
  int id = 0;
  for (int64_t t : kTicks) {
    wheel.At(SimTime::FromMicros(t), [&wheel_order, id] { wheel_order.push_back(id); });
    heap.At(SimTime::FromMicros(t), [&heap_order, id] { heap_order.push_back(id); });
    ++id;
  }
  EXPECT_EQ(wheel.RunAll(), 8u);
  EXPECT_EQ(heap.RunAll(), 8u);
  EXPECT_EQ(wheel_order, heap_order);
  // Same tick => insertion (sequence) order.
  EXPECT_EQ(wheel_order, (std::vector<int>{0, 2, 4, 5, 7, 1, 3, 6}));
  EXPECT_EQ(wheel_clock.Now(), heap_clock.Now());
}

TEST(TimingWheelTest, FarFutureEventsOverflowAndCascadeBack) {
  SimClock clock;
  EventQueue q(&clock);
  // ~2^40 us is the wheel horizon; these live in the overflow heap until
  // the wheel reaches their top-level block.
  const int64_t kHorizon = 1ll << 40;
  std::vector<Fired> fired;
  auto log = [&fired, &clock](int id) {
    return [&fired, &clock, id] {
      fired.push_back({id, clock.Now().micros()});
    };
  };
  q.At(SimTime::FromMicros(3 * kHorizon + 17), log(3));
  q.At(SimTime::FromMicros(kHorizon + 5), log(1));
  q.At(SimTime::FromMicros(42), log(0));
  q.At(SimTime::FromMicros(2 * kHorizon), log(2));
  EXPECT_GE(q.wheel_stats().overflow_scheduled, 3u);
  EXPECT_EQ(q.RunAll(), 4u);
  EXPECT_EQ(q.wheel_stats().overflow_drained, q.wheel_stats().overflow_scheduled);
  std::vector<Fired> want{{0, 42},
                          {1, kHorizon + 5},
                          {2, 2 * kHorizon},
                          {3, 3 * kHorizon + 17}};
  EXPECT_EQ(fired, want);
}

TEST(TimingWheelTest, OverflowDrainPreservesSeqOrderAgainstLaterSchedules) {
  // Event A goes to the overflow heap; after the wheel advances near A's
  // time, event B is scheduled at the *same* microsecond directly into the
  // wheel. A has the lower sequence number and must still fire first —
  // this is exactly what the eager drain at horizon crossings guarantees.
  SimClock clock;
  EventQueue q(&clock);
  const int64_t kT = (1ll << 40) + 1000;
  std::vector<int> order;
  q.At(SimTime::FromMicros(kT), [&order] { order.push_back('A'); });   // overflow
  q.At(SimTime::FromMicros(kT - 500), [&order, &q, kT] {
    order.push_back('x');
    // The wheel has crossed the horizon by now; A is back in the wheel.
    q.At(SimTime::FromMicros(kT), [&order] { order.push_back('B'); });
  });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{'x', 'A', 'B'}));
}

TEST(TimingWheelTest, ScheduleDuringFireAtCurrentTickJoinsSameBatch) {
  SimClock clock;
  EventQueue q(&clock);
  std::vector<int> order;
  q.At(SimTime::FromMicros(100), [&] {
    order.push_back(1);
    // Zero-delay hop: lands on the tail of the firing slot.
    q.At(clock.Now(), [&order] { order.push_back(3); });
  });
  q.At(SimTime::FromMicros(100), [&order] { order.push_back(2); });
  // A single RunUntil at the tick fires the chained event too.
  EXPECT_EQ(q.RunUntil(SimTime::FromMicros(100)), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.Now().micros(), 100);
}

TEST(TimingWheelTest, CascadeRedistributesAcrossLevelBoundaries) {
  SimClock clock;
  EventQueue q(&clock);
  // Two events one level-2 block apart (~65 ms) plus one 1 us after the
  // first: firing the first must not disturb the sub-ordering of the rest.
  std::vector<Fired> fired;
  auto log = [&fired, &clock](int id) {
    return [&fired, &clock, id] {
      fired.push_back({id, clock.Now().micros()});
    };
  };
  q.At(SimTime::FromMicros(70000), log(2));
  q.At(SimTime::FromMicros(1), log(0));
  q.At(SimTime::FromMicros(2), log(1));
  q.RunAll();
  EXPECT_GT(q.wheel_stats().cascaded, 0u);
  std::vector<Fired> want{{0, 1}, {1, 2}, {2, 70000}};
  EXPECT_EQ(fired, want);
}

// The randomized differential: identical programs against the wheel and
// the old heap, with chained schedule-during-fire events, time scales
// spanning microseconds to beyond the wheel horizon, and staged RunUntil
// boundaries. Firing order, fire times and clock positions must match
// exactly at every stage, across seeds.
template <typename Queue>
std::vector<Fired> RunProgram(Queue& q, SimClock& clock, uint32_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Fired> fired;
  int next_id = 1000;
  // Chained events re-arm with a random delay a few times; both runs draw
  // from their own identically-seeded RNG in fire order, so draws align
  // exactly iff the firing order is identical.
  std::function<void(int, int)> fire_and_chain =
      [&](int id, int depth) {
        fired.push_back({id, clock.Now().micros()});
        if (depth <= 0) return;
        uint64_t delay = rng() % 5000;  // often 0: same-tick re-entry
        int child = next_id++;
        q.At(clock.Now() + Duration::Micros(static_cast<int64_t>(delay)),
             [&fire_and_chain, child, depth] { fire_and_chain(child, depth - 1); });
      };
  const int64_t kScales[] = {1 << 10, 1 << 20, 1ll << 30, 1ll << 42};
  for (int i = 0; i < 200; ++i) {
    int64_t at = static_cast<int64_t>(rng() % static_cast<uint64_t>(kScales[i % 4]));
    int depth = static_cast<int>(rng() % 3);
    int id = i;
    q.At(SimTime::FromMicros(at),
         [&fire_and_chain, id, depth] { fire_and_chain(id, depth); });
  }
  // Staged boundaries exercise stop-at-limit cursor parking, then a full
  // drain exercises the run-to-empty path.
  for (int64_t boundary : {500ll, 100000ll, 1ll << 31}) {
    q.RunUntil(SimTime::FromMicros(boundary));
    fired.push_back({-1, clock.Now().micros()});  // clock checkpoint
  }
  q.RunAll();
  fired.push_back({-2, clock.Now().micros()});
  return fired;
}

TEST(TimingWheelTest, RandomizedDifferentialMatchesHeapAcrossSeeds) {
  for (uint32_t seed : {1u, 7u, 42u, 1234u, 99991u}) {
    SimClock wheel_clock, heap_clock;
    EventQueue wheel(&wheel_clock);
    HeapQueue heap(&heap_clock);
    std::vector<Fired> from_wheel = RunProgram(wheel, wheel_clock, seed);
    std::vector<Fired> from_heap = RunProgram(heap, heap_clock, seed);
    ASSERT_EQ(from_wheel.size(), from_heap.size()) << "seed " << seed;
    for (size_t i = 0; i < from_wheel.size(); ++i) {
      ASSERT_EQ(from_wheel[i].id, from_heap[i].id)
          << "seed " << seed << " step " << i;
      ASSERT_EQ(from_wheel[i].at_micros, from_heap[i].at_micros)
          << "seed " << seed << " step " << i;
    }
    EXPECT_EQ(wheel.pending(), 0u);
    EXPECT_EQ(heap.pending(), 0u);
  }
}

TEST(TimingWheelTest, NodePoolRecyclesWithoutGrowth) {
  SimClock clock;
  EventQueue q(&clock);
  // Steady-state load: schedule/fire far more events than any single
  // moment holds; the chunked pool must not grow past peak concurrency.
  int fired = 0;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 8; ++i) {
      q.At(SimTime::FromMicros(round * 10 + i), [&fired] { ++fired; });
    }
    q.RunUntil(SimTime::FromMicros(round * 10 + 9));
  }
  EXPECT_EQ(fired, 8000);
  EXPECT_EQ(q.wheel_stats().fired, 8000u);
}

}  // namespace
}  // namespace speedkit::sim
