// Network behaviour under an attached FaultSchedule — and, just as
// important, the guarantee that an attached-but-empty schedule changes
// nothing, including the RNG draw sequence.
#include <gtest/gtest.h>

#include "sim/fault_schedule.h"
#include "sim/network.h"

namespace speedkit::sim {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

FaultWindow Window(double start_s, double end_s, bool down = true,
                   double multiplier = 1.0) {
  FaultWindow w;
  w.start = At(start_s);
  w.end = At(end_s);
  w.down = down;
  w.latency_multiplier = multiplier;
  return w;
}

TEST(NetworkFaultTest, DeliveredWithoutScheduleNeverFails) {
  Network net(NetworkConfig::Instant(), Pcg32(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(net.Delivered(Link::kClientEdge, At(i)));
  }
}

TEST(NetworkFaultTest, DownWindowBlocksDelivery) {
  FaultScheduleConfig config;
  config.client_edge.windows.push_back(Window(10, 20));
  FaultSchedule faults(config);
  Network net(NetworkConfig::Instant(), Pcg32(1));
  net.SetFaultSchedule(&faults);
  EXPECT_TRUE(net.Delivered(Link::kClientEdge, At(5)));
  EXPECT_FALSE(net.Delivered(Link::kClientEdge, At(15)));
  EXPECT_TRUE(net.Delivered(Link::kClientEdge, At(20)));
  // The other links are unaffected by this window.
  EXPECT_TRUE(net.Delivered(Link::kClientOrigin, At(15)));
}

TEST(NetworkFaultTest, CertainLossAlwaysFails) {
  FaultScheduleConfig config;
  config.edge_origin.loss_probability = 1.0;
  FaultSchedule faults(config);
  Network net(NetworkConfig::Instant(), Pcg32(3));
  net.SetFaultSchedule(&faults);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(net.Delivered(Link::kEdgeOrigin, At(i)));
  }
}

TEST(NetworkFaultTest, PartialLossFailsSometimes) {
  FaultScheduleConfig config;
  config.client_edge.loss_probability = 0.5;
  FaultSchedule faults(config);
  Network net(NetworkConfig::Instant(), Pcg32(5));
  net.SetFaultSchedule(&faults);
  int lost = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!net.Delivered(Link::kClientEdge, At(i))) ++lost;
  }
  EXPECT_GT(lost, 400);
  EXPECT_LT(lost, 600);
}

TEST(NetworkFaultTest, LatencySpikeStretchesSampledRtt) {
  NetworkConfig nc;
  nc.client_origin = LinkSpec{Duration::Millis(100), 0.0, 4.0e6};
  FaultScheduleConfig config;
  config.client_origin.windows.push_back(
      Window(10, 20, /*down=*/false, /*multiplier=*/3.0));
  FaultSchedule faults(config);
  Network net(nc, Pcg32(7));
  net.SetFaultSchedule(&faults);
  EXPECT_EQ(net.SampleRtt(Link::kClientOrigin, At(5)), Duration::Millis(100));
  EXPECT_EQ(net.SampleRtt(Link::kClientOrigin, At(15)), Duration::Millis(300));
  EXPECT_EQ(net.SampleRtt(Link::kClientOrigin, At(25)), Duration::Millis(100));
}

TEST(NetworkFaultTest, EmptyScheduleKeepsRngSequenceBitIdentical) {
  NetworkConfig nc;  // default lossy-free jittery links
  Network plain(nc, Pcg32(42));
  Network scheduled(nc, Pcg32(42));
  FaultSchedule empty((FaultScheduleConfig()));
  scheduled.SetFaultSchedule(&empty);
  for (int i = 0; i < 200; ++i) {
    // Delivered must not consume a draw on a lossless link, so the RTT
    // sample streams stay aligned.
    ASSERT_TRUE(scheduled.Delivered(Link::kClientEdge, At(i)));
    EXPECT_EQ(plain.SampleRtt(Link::kClientEdge, At(i)),
              scheduled.SampleRtt(Link::kClientEdge, At(i)))
        << i;
  }
}

}  // namespace
}  // namespace speedkit::sim
