#include "sim/fault_schedule.h"

#include <gtest/gtest.h>

namespace speedkit::sim {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

FaultWindow Window(double start_s, double end_s, bool down = true,
                   double multiplier = 1.0) {
  FaultWindow w;
  w.start = At(start_s);
  w.end = At(end_s);
  w.down = down;
  w.latency_multiplier = multiplier;
  return w;
}

TEST(FaultScheduleTest, DefaultConfigIsEmptyAndQuiet) {
  FaultScheduleConfig config;
  EXPECT_TRUE(config.Empty());
  FaultSchedule schedule(config);
  EXPECT_FALSE(schedule.LinkDown(Link::kClientEdge, At(0)));
  EXPECT_FALSE(schedule.OriginDown(At(0)));
  EXPECT_FALSE(schedule.EdgeDown(0, At(0)));
  EXPECT_DOUBLE_EQ(schedule.LatencyMultiplier(Link::kEdgeOrigin, At(0)), 1.0);
  EXPECT_DOUBLE_EQ(schedule.LossProbability(Link::kClientOrigin), 0.0);
}

TEST(FaultScheduleTest, AnyFaultMakesConfigNonEmpty) {
  FaultScheduleConfig loss;
  loss.client_edge.loss_probability = 0.1;
  EXPECT_FALSE(loss.Empty());

  FaultScheduleConfig outage;
  outage.origin.push_back(Window(1, 2));
  EXPECT_FALSE(outage.Empty());

  FaultScheduleConfig purge;
  purge.purge_loss_probability = 0.5;
  EXPECT_FALSE(purge.Empty());
}

TEST(FaultScheduleTest, DownWindowIsHalfOpen) {
  FaultScheduleConfig config;
  config.client_edge.windows.push_back(Window(10, 20));
  FaultSchedule schedule(config);
  EXPECT_FALSE(schedule.LinkDown(Link::kClientEdge, At(9.999)));
  EXPECT_TRUE(schedule.LinkDown(Link::kClientEdge, At(10)));
  EXPECT_TRUE(schedule.LinkDown(Link::kClientEdge, At(19.999)));
  EXPECT_FALSE(schedule.LinkDown(Link::kClientEdge, At(20)));
  // Other links are unaffected.
  EXPECT_FALSE(schedule.LinkDown(Link::kClientOrigin, At(15)));
  EXPECT_FALSE(schedule.LinkDown(Link::kEdgeOrigin, At(15)));
}

TEST(FaultScheduleTest, LatencySpikeAppliesOnlyInsideItsWindow) {
  FaultScheduleConfig config;
  config.edge_origin.windows.push_back(
      Window(10, 20, /*down=*/false, /*multiplier=*/3.0));
  FaultSchedule schedule(config);
  EXPECT_DOUBLE_EQ(schedule.LatencyMultiplier(Link::kEdgeOrigin, At(5)), 1.0);
  EXPECT_DOUBLE_EQ(schedule.LatencyMultiplier(Link::kEdgeOrigin, At(15)), 3.0);
  EXPECT_DOUBLE_EQ(schedule.LatencyMultiplier(Link::kEdgeOrigin, At(25)), 1.0);
  // A spike window never makes the link "down".
  EXPECT_FALSE(schedule.LinkDown(Link::kEdgeOrigin, At(15)));
}

TEST(FaultScheduleTest, DownWindowDoesNotStretchLatency) {
  FaultScheduleConfig config;
  config.client_edge.windows.push_back(
      Window(0, 10, /*down=*/true, /*multiplier=*/5.0));
  FaultSchedule schedule(config);
  // While down, latency is meaningless (nothing gets through), so the
  // multiplier must not leak from a down window.
  EXPECT_DOUBLE_EQ(schedule.LatencyMultiplier(Link::kClientEdge, At(5)), 1.0);
}

TEST(FaultScheduleTest, OriginAndEdgeOutagesAreIndependent) {
  FaultScheduleConfig config;
  config.origin.push_back(Window(10, 20));
  config.edges.push_back({Window(30, 40)});  // edge 0
  FaultSchedule schedule(config);
  EXPECT_TRUE(schedule.OriginDown(At(15)));
  EXPECT_FALSE(schedule.EdgeDown(0, At(15)));
  EXPECT_TRUE(schedule.EdgeDown(0, At(35)));
  EXPECT_FALSE(schedule.OriginDown(At(35)));
}

TEST(FaultScheduleTest, UnscheduledEdgeIndexIsAlwaysUp) {
  FaultScheduleConfig config;
  config.edges.push_back({Window(0, 100)});
  FaultSchedule schedule(config);
  EXPECT_TRUE(schedule.EdgeDown(0, At(50)));
  EXPECT_FALSE(schedule.EdgeDown(1, At(50)));
  EXPECT_FALSE(schedule.EdgeDown(-1, At(50)));
}

TEST(FaultScheduleTest, PurgeFaultKnobsPassThrough) {
  FaultScheduleConfig config;
  config.purge_loss_probability = 0.25;
  config.purge_delay_probability = 0.5;
  config.purge_delay_factor = 7.0;
  FaultSchedule schedule(config);
  EXPECT_DOUBLE_EQ(schedule.purge_loss_probability(), 0.25);
  EXPECT_DOUBLE_EQ(schedule.purge_delay_probability(), 0.5);
  EXPECT_DOUBLE_EQ(schedule.purge_delay_factor(), 7.0);
}

}  // namespace
}  // namespace speedkit::sim
