#include "cache/http_cache.h"

#include <gtest/gtest.h>

namespace speedkit::cache {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

http::HttpResponse Response(std::string cc_value, double generated_s = 0,
                            uint64_t version = 1,
                            std::string body = "payload") {
  http::HttpResponse resp;
  resp.status_code = 200;
  resp.body = std::move(body);
  resp.headers.Set("Cache-Control", cc_value);
  resp.SetETag("\"v" + std::to_string(version) + "\"");
  resp.object_version = version;
  resp.generated_at = At(generated_s);
  return resp;
}

TEST(HttpCacheTest, MissOnEmpty) {
  HttpCache cache(false, 0);
  EXPECT_EQ(cache.Lookup("k", At(0)).outcome, LookupOutcome::kMiss);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(HttpCacheTest, StoreAndFreshHit) {
  HttpCache cache(false, 0);
  ASSERT_TRUE(cache.Store("k", Response("max-age=60"), At(0)));
  LookupResult r = cache.Lookup("k", At(30));
  EXPECT_EQ(r.outcome, LookupOutcome::kFreshHit);
  EXPECT_EQ(r.entry->response.body, "payload");
}

TEST(HttpCacheTest, EntryGoesStaleAtTtl) {
  HttpCache cache(false, 0);
  cache.Store("k", Response("max-age=60"), At(0));
  EXPECT_EQ(cache.Lookup("k", At(59)).outcome, LookupOutcome::kFreshHit);
  EXPECT_EQ(cache.Lookup("k", At(60)).outcome, LookupOutcome::kStaleHit);
  EXPECT_EQ(cache.stats().stale_hits, 1u);
}

TEST(HttpCacheTest, AgePropagationUsesOriginRenderTime) {
  // Response rendered at t=0 but stored at t=40 (sat in a CDN): only 20s
  // of its 60s lifetime remain.
  HttpCache cache(false, 0);
  cache.Store("k", Response("max-age=60", /*generated_s=*/0), At(40));
  EXPECT_EQ(cache.Lookup("k", At(55)).outcome, LookupOutcome::kFreshHit);
  EXPECT_EQ(cache.Lookup("k", At(61)).outcome, LookupOutcome::kStaleHit);
}

TEST(HttpCacheTest, NoStoreRejected) {
  HttpCache cache(false, 0);
  EXPECT_FALSE(cache.Store("k", Response("no-store"), At(0)));
  EXPECT_EQ(cache.stats().store_rejects, 1u);
  EXPECT_EQ(cache.Lookup("k", At(0)).outcome, LookupOutcome::kMiss);
}

TEST(HttpCacheTest, PrivateRejectedBySharedCacheOnly) {
  HttpCache shared(true, 0);
  HttpCache priv(false, 0);
  EXPECT_FALSE(shared.Store("k", Response("private, max-age=60"), At(0)));
  EXPECT_TRUE(priv.Store("k", Response("private, max-age=60"), At(0)));
}

TEST(HttpCacheTest, SharedCacheUsesSMaxage) {
  HttpCache shared(true, 0);
  HttpCache priv(false, 0);
  http::HttpResponse resp = Response("max-age=10, s-maxage=100");
  shared.Store("k", resp, At(0));
  priv.Store("k", resp, At(0));
  EXPECT_EQ(shared.Lookup("k", At(50)).outcome, LookupOutcome::kFreshHit);
  EXPECT_EQ(priv.Lookup("k", At(50)).outcome, LookupOutcome::kStaleHit);
}

TEST(HttpCacheTest, NoCacheEntriesRequireRevalidation) {
  HttpCache cache(false, 0);
  ASSERT_TRUE(cache.Store("k", Response("no-cache, max-age=60"), At(0)));
  // Stored, but never served as fresh.
  EXPECT_EQ(cache.Lookup("k", At(1)).outcome, LookupOutcome::kStaleHit);
}

TEST(HttpCacheTest, RefreshExtendsLifetimeAfter304) {
  HttpCache cache(false, 0);
  cache.Store("k", Response("max-age=60"), At(0));
  ASSERT_EQ(cache.Lookup("k", At(70)).outcome, LookupOutcome::kStaleHit);
  http::CacheControl cc = http::CacheControl::Parse("max-age=60");
  http::HttpResponse nm = http::MakeNotModified("\"v1\"", cc, 1, At(70));
  cache.Refresh("k", nm, At(70));
  LookupResult r = cache.Lookup("k", At(100));
  EXPECT_EQ(r.outcome, LookupOutcome::kFreshHit);
  EXPECT_EQ(r.entry->response.body, "payload");  // body survives
  EXPECT_EQ(cache.stats().refreshes, 1u);
}

TEST(HttpCacheTest, RefreshClearsNoCacheGate) {
  HttpCache cache(false, 0);
  cache.Store("k", Response("no-cache, max-age=60"), At(0));
  http::CacheControl cc = http::CacheControl::Parse("max-age=60");
  cache.Refresh("k", http::MakeNotModified("\"v1\"", cc, 1, At(5)), At(5));
  EXPECT_EQ(cache.Lookup("k", At(10)).outcome, LookupOutcome::kFreshHit);
}

TEST(HttpCacheTest, RefreshOfMissingKeyIsNoop) {
  HttpCache cache(false, 0);
  http::CacheControl cc;
  cache.Refresh("ghost", http::MakeNotModified("\"v1\"", cc, 1, At(0)), At(0));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(HttpCacheTest, PurgeRemovesEntry) {
  HttpCache cache(true, 0);
  cache.Store("k", Response("max-age=60"), At(0));
  EXPECT_TRUE(cache.Purge("k"));
  EXPECT_FALSE(cache.Purge("k"));
  EXPECT_EQ(cache.Lookup("k", At(1)).outcome, LookupOutcome::kMiss);
  EXPECT_EQ(cache.stats().purges, 1u);
}

TEST(HttpCacheTest, ErrorAndEmptyResponsesNotStored) {
  HttpCache cache(false, 0);
  http::HttpResponse err = Response("max-age=60");
  err.status_code = 404;
  EXPECT_FALSE(cache.Store("k", err, At(0)));
  http::HttpResponse empty = Response("max-age=60");
  empty.body.clear();
  EXPECT_FALSE(cache.Store("k", empty, At(0)));
}

TEST(HttpCacheTest, CapacityEvictionWorksThroughHttpLayer) {
  HttpCache cache(false, 600);
  cache.Store("a", Response("max-age=60", 0, 1, std::string(200, 'x')), At(0));
  cache.Store("b", Response("max-age=60", 0, 1, std::string(200, 'x')), At(0));
  cache.Store("c", Response("max-age=60", 0, 1, std::string(200, 'x')), At(0));
  EXPECT_LT(cache.size(), 3u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(HttpCacheTest, ZeroTtlEntryIsStoredButStale) {
  HttpCache cache(false, 0);
  ASSERT_TRUE(cache.Store("k", Response("max-age=0"), At(0)));
  EXPECT_EQ(cache.Lookup("k", At(0)).outcome, LookupOutcome::kStaleHit);
}

http::HeaderMap SegHeaders(std::string_view segment) {
  http::HeaderMap headers;
  headers.Set("X-Segment", segment);
  return headers;
}

http::HttpResponse VaryingResponse(std::string body) {
  http::HttpResponse resp = Response("max-age=60", 0, 1, std::move(body));
  resp.headers.Set("Vary", "X-Segment");
  return resp;
}

TEST(HttpCacheTest, VaryingVariantsNeverCrossServe) {
  HttpCache cache(true, 0);
  ASSERT_TRUE(cache.Store("k", SegHeaders("A"), VaryingResponse("for-A"), At(0)));
  ASSERT_TRUE(cache.Store("k", SegHeaders("B"), VaryingResponse("for-B"), At(0)));

  LookupResult a = cache.Lookup("k", SegHeaders("A"), At(1));
  ASSERT_EQ(a.outcome, LookupOutcome::kFreshHit);
  EXPECT_EQ(a.entry->response.body, "for-A");
  LookupResult b = cache.Lookup("k", SegHeaders("B"), At(1));
  ASSERT_EQ(b.outcome, LookupOutcome::kFreshHit);
  EXPECT_EQ(b.entry->response.body, "for-B");
  // A segment that never populated its variant misses — it must not be
  // handed another segment's copy.
  EXPECT_EQ(cache.Lookup("k", SegHeaders("C"), At(1)).outcome,
            LookupOutcome::kMiss);
}

TEST(HttpCacheTest, VaryStarIsUncacheable) {
  HttpCache cache(true, 0);
  http::HttpResponse resp = Response("max-age=60");
  resp.headers.Set("Vary", "*");
  EXPECT_FALSE(cache.Store("k", SegHeaders("A"), resp, At(0)));
  EXPECT_EQ(cache.stats().store_rejects, 1u);
  EXPECT_EQ(cache.Lookup("k", SegHeaders("A"), At(0)).outcome,
            LookupOutcome::kMiss);
}

TEST(HttpCacheTest, PurgeRemovesAllVariants) {
  HttpCache cache(true, 0);
  cache.Store("k", SegHeaders("A"), VaryingResponse("for-A"), At(0));
  cache.Store("k", SegHeaders("B"), VaryingResponse("for-B"), At(0));
  EXPECT_TRUE(cache.Purge("k"));
  EXPECT_EQ(cache.Lookup("k", SegHeaders("A"), At(1)).outcome,
            LookupOutcome::kMiss);
  EXPECT_EQ(cache.Lookup("k", SegHeaders("B"), At(1)).outcome,
            LookupOutcome::kMiss);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(HttpCacheTest, HeaderlessLookupOfVaryingResourceMisses) {
  HttpCache cache(true, 0);
  cache.Store("k", SegHeaders("A"), VaryingResponse("for-A"), At(0));
  // A request without the Vary'd header matches no stored variant.
  EXPECT_EQ(cache.Lookup("k", At(1)).outcome, LookupOutcome::kMiss);
}

}  // namespace
}  // namespace speedkit::cache
