#include "cache/lru_cache.h"

#include <gtest/gtest.h>

#include <string>

namespace speedkit::cache {
namespace {

LruCache<std::string>::SizeFn BySize() {
  return [](const std::string& s) { return s.size(); };
}

TEST(LruCacheTest, PutGetRoundTrip) {
  LruCache<int> cache(0);
  cache.Put("a", 1);
  ASSERT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(*cache.Get("a"), 1);
  EXPECT_EQ(cache.Get("b"), nullptr);
}

TEST(LruCacheTest, PutReplacesValue) {
  LruCache<int> cache(0);
  cache.Put("a", 1);
  cache.Put("a", 2);
  EXPECT_EQ(*cache.Get("a"), 2);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<std::string> cache(10, BySize());
  cache.Put("a", "12345");  // 5 bytes
  cache.Put("b", "12345");  // 5 bytes, at budget
  cache.Get("a");           // touch a: b is now LRU
  cache.Put("c", "12345");  // evicts b
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, PeekDoesNotTouchRecency) {
  LruCache<std::string> cache(10, BySize());
  cache.Put("a", "12345");
  cache.Put("b", "12345");
  cache.Peek("a");          // must NOT promote a
  cache.Put("c", "12345");  // evicts a (still LRU)
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("b"), nullptr);
}

TEST(LruCacheTest, OversizedEntryNotAdmitted) {
  LruCache<std::string> cache(4, BySize());
  cache.Put("big", "123456789");
  EXPECT_EQ(cache.Get("big"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCacheTest, OversizedReplacementErasesOld) {
  LruCache<std::string> cache(4, BySize());
  cache.Put("k", "12");
  cache.Put("k", "123456789");  // too big: old entry must go too
  EXPECT_EQ(cache.Get("k"), nullptr);
}

TEST(LruCacheTest, UnboundedNeverEvicts) {
  LruCache<std::string> cache(0, BySize());
  for (int i = 0; i < 1000; ++i) {
    cache.Put("k" + std::to_string(i), std::string(100, 'x'));
  }
  EXPECT_EQ(cache.size(), 1000u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LruCacheTest, ByteAccountingOnReplace) {
  LruCache<std::string> cache(100, BySize());
  cache.Put("a", std::string(40, 'x'));
  EXPECT_EQ(cache.used_bytes(), 40u);
  cache.Put("a", std::string(10, 'x'));
  EXPECT_EQ(cache.used_bytes(), 10u);
  cache.Erase("a");
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCacheTest, EraseMissingReturnsFalse) {
  LruCache<int> cache(0);
  EXPECT_FALSE(cache.Erase("x"));
  cache.Put("x", 1);
  EXPECT_TRUE(cache.Erase("x"));
}

TEST(LruCacheTest, EraseIfRemovesMatching) {
  LruCache<int> cache(0);
  for (int i = 0; i < 10; ++i) cache.Put("k" + std::to_string(i), i);
  size_t removed = cache.EraseIf(
      [](const std::string&, const int& v) { return v % 2 == 0; });
  EXPECT_EQ(removed, 5u);
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_EQ(cache.Get("k0"), nullptr);
  EXPECT_NE(cache.Get("k1"), nullptr);
}

TEST(LruCacheTest, ClearEmptiesEverything) {
  LruCache<std::string> cache(100, BySize());
  cache.Put("a", "xyz");
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_EQ(cache.Get("a"), nullptr);
}

TEST(LruCacheTest, HeterogeneousLookupNeedsNoKeyCopy) {
  LruCache<int> cache(0);
  cache.Put("alpha", 1);
  cache.Put("beta", 2);
  // string_view (and string literal) keys probe the index directly via
  // transparent hashing — no std::string materialization per lookup.
  std::string_view alpha_view("alpha");
  ASSERT_NE(cache.Get(alpha_view), nullptr);
  EXPECT_EQ(*cache.Get(alpha_view), 1);
  EXPECT_NE(cache.Peek(std::string_view("beta")), nullptr);
  EXPECT_EQ(cache.Get(std::string_view("gamma")), nullptr);
  EXPECT_TRUE(cache.Erase(std::string_view("alpha")));
  EXPECT_EQ(cache.Get(alpha_view), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, EvictionCascadeForLargeInsert) {
  LruCache<std::string> cache(10, BySize());
  cache.Put("a", "123");
  cache.Put("b", "123");
  cache.Put("c", "123");  // 9 bytes used
  cache.Put("d", "1234567890");  // exactly at budget: evicts all three
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Get("d"), nullptr);
  EXPECT_EQ(cache.evictions(), 3u);
}

}  // namespace
}  // namespace speedkit::cache
