// Cold-client spill codec: HttpCache::Freeze/Thaw must be a lossless
// round trip — contents, Vary variants, stats, eviction history AND the
// LRU recency order, so a thawed cache makes the exact same decisions as
// its never-frozen twin forever after. The fleet depends on this being
// behavior-neutral (fig_memscale gates it end-to-end; these tests pin
// the codec directly).
#include <string>

#include <gtest/gtest.h>

#include "cache/http_cache.h"

namespace speedkit::cache {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

http::HttpResponse Response(std::string cc_value, double generated_s = 0,
                            uint64_t version = 1,
                            std::string body = "payload") {
  http::HttpResponse resp;
  resp.status_code = 200;
  resp.body = std::move(body);
  resp.headers.Set("Cache-Control", cc_value);
  resp.SetETag("\"v" + std::to_string(version) + "\"");
  resp.object_version = version;
  resp.generated_at = At(generated_s);
  return resp;
}

TEST(HttpCacheFreezeTest, RoundTripPreservesContentsAndStats) {
  HttpCache cache(false, 0);
  cache.Store("a", Response("max-age=60", 0, 1, "body-a"), At(0));
  cache.Store("b", Response("max-age=5", 0, 2, "body-b"), At(0));
  cache.Store("c", Response("no-cache, max-age=60", 0, 3, "body-c"), At(0));
  cache.Lookup("a", At(1));          // fresh hit
  cache.Lookup("b", At(10));         // stale hit
  cache.Lookup("missing", At(1));    // miss
  const HttpCacheStats before = cache.stats();

  std::string blob = cache.Freeze();
  HttpCache thawed(false, 0);
  ASSERT_TRUE(thawed.Thaw(blob));

  EXPECT_EQ(thawed.size(), cache.size());
  EXPECT_EQ(thawed.used_bytes(), cache.used_bytes());
  EXPECT_EQ(thawed.stats().fresh_hits, before.fresh_hits);
  EXPECT_EQ(thawed.stats().stale_hits, before.stale_hits);
  EXPECT_EQ(thawed.stats().misses, before.misses);
  EXPECT_EQ(thawed.stats().stores, before.stores);

  LookupResult a = thawed.Lookup("a", At(1));
  ASSERT_EQ(a.outcome, LookupOutcome::kFreshHit);
  EXPECT_EQ(a.entry->response.body, "body-a");
  EXPECT_EQ(a.entry->response.object_version, 1u);
  EXPECT_EQ(thawed.Lookup("b", At(10)).outcome, LookupOutcome::kStaleHit);
  // no-cache survives: entry present but only usable after revalidation.
  LookupResult c = thawed.Lookup("c", At(1));
  EXPECT_EQ(c.outcome, LookupOutcome::kStaleHit);
}

// The decisive property: after thawing, capacity pressure evicts the same
// victim in the same order as in a never-frozen twin — the blob encodes
// recency, not just membership.
TEST(HttpCacheFreezeTest, RecencyOrderSurvivesSoEvictionsMatchTwin) {
  // Capacity for exactly three of these (equal-sized) entries, measured
  // rather than hardcoded so the test tracks the entry-size accounting.
  size_t capacity = [] {
    HttpCache probe(false, 0);
    probe.Store("a", Response("max-age=60", 0, 1, "body-a"), At(0));
    probe.Store("b", Response("max-age=60", 0, 2, "body-b"), At(0));
    probe.Store("c", Response("max-age=60", 0, 3, "body-c"), At(0));
    return probe.used_bytes();
  }();
  auto run = [capacity](bool freeze_midway) {
    HttpCache cache(false, capacity);
    cache.Store("a", Response("max-age=60", 0, 1, "body-a"), At(0));
    cache.Store("b", Response("max-age=60", 0, 2, "body-b"), At(0));
    cache.Store("c", Response("max-age=60", 0, 3, "body-c"), At(0));
    cache.Lookup("a", At(1));  // a is now MRU; b is LRU
    if (freeze_midway) {
      std::string blob = cache.Freeze();
      cache.Clear();
      EXPECT_TRUE(cache.Thaw(blob));
    }
    cache.Store("d", Response("max-age=60", 0, 4, "body-d"), At(2));
    std::string surviving;
    for (const char* key : {"a", "b", "c", "d"}) {
      if (cache.Lookup(key, At(3)).outcome == LookupOutcome::kFreshHit) {
        surviving += key;
      }
    }
    return surviving + "/" + std::to_string(cache.evictions());
  };
  EXPECT_EQ(run(/*freeze_midway=*/true), run(/*freeze_midway=*/false));
  EXPECT_EQ(run(/*freeze_midway=*/false), "acd/1");  // b was LRU
}

TEST(HttpCacheFreezeTest, VaryVariantsSurvive) {
  HttpCache cache(false, 0);
  http::HttpResponse seg_a = Response("max-age=60", 0, 1, "segment-a");
  seg_a.headers.Set("Vary", "X-Segment");
  http::HttpResponse seg_b = Response("max-age=60", 0, 2, "segment-b");
  seg_b.headers.Set("Vary", "X-Segment");
  http::HeaderMap req_a;
  req_a.Set("X-Segment", "a");
  http::HeaderMap req_b;
  req_b.Set("X-Segment", "b");
  ASSERT_TRUE(cache.Store("k", req_a, seg_a, At(0)));
  ASSERT_TRUE(cache.Store("k", req_b, seg_b, At(0)));

  HttpCache thawed(false, 0);
  ASSERT_TRUE(thawed.Thaw(cache.Freeze()));
  LookupResult a = thawed.Lookup("k", req_a, At(1));
  ASSERT_EQ(a.outcome, LookupOutcome::kFreshHit);
  EXPECT_EQ(a.entry->response.body, "segment-a");
  LookupResult b = thawed.Lookup("k", req_b, At(1));
  ASSERT_EQ(b.outcome, LookupOutcome::kFreshHit);
  EXPECT_EQ(b.entry->response.body, "segment-b");
  // A third variant can still be stored and purged through the thawed
  // Vary bookkeeping.
  EXPECT_TRUE(thawed.Purge("k"));
  EXPECT_EQ(thawed.Lookup("k", req_a, At(1)).outcome, LookupOutcome::kMiss);
}

// The variant-name section is presence-gated: a never-varying cache —
// the overwhelmingly common case in a spilled fleet — spends one byte on
// it instead of a dangling empty count. Pinned by exact header size so a
// codec change that reintroduces the empty section fails here.
TEST(HttpCacheFreezeTest, EmptyVarySectionIsOmittedFromBlob) {
  HttpCache empty(false, 0);
  // magic(4) + shared(1) + capacity + 9 stat counters (10 x U64 = 80) +
  // vary presence byte(1) + entry count(4).
  EXPECT_EQ(empty.Freeze().size(), 90u);

  // And the lean blob still round-trips losslessly.
  HttpCache cache(false, 0);
  cache.Store("a", Response("max-age=60", 0, 1, "body-a"), At(0));
  HttpCache thawed(false, 0);
  ASSERT_TRUE(thawed.Thaw(cache.Freeze()));
  LookupResult a = thawed.Lookup("a", At(1));
  ASSERT_EQ(a.outcome, LookupOutcome::kFreshHit);
  EXPECT_EQ(a.entry->response.body, "body-a");
}

// Eviction removes variant entries but leaves the vary_names_ mapping
// behind in memory; Freeze must not spill that dead bookkeeping. A fleet
// client that varied once and then churned past it freezes as lean as one
// that never varied at all.
TEST(HttpCacheFreezeTest, EvictedVaryMappingsAreDroppedAtFreeze) {
  http::HttpResponse varied = Response("max-age=60", 0, 1, "segment-a");
  varied.headers.Set("Vary", "X-Segment");
  http::HeaderMap req;
  req.Set("X-Segment", "a");

  // Capacity that holds either entry alone but not both, so the second
  // store evicts the variant and orphans its vary mapping.
  size_t total = [&] {
    HttpCache probe(false, 0);
    probe.Store("k", req, varied, At(0));
    probe.Store("plain", Response("max-age=60", 0, 2, "body-p"), At(0));
    return probe.used_bytes();
  }();
  HttpCache cache(false, total - 1);
  ASSERT_TRUE(cache.Store("k", req, varied, At(0)));
  ASSERT_TRUE(
      cache.Store("plain", Response("max-age=60", 0, 2, "body-p"), At(1)));
  ASSERT_EQ(cache.evictions(), 1u);

  std::string blob = cache.Freeze();
  // The dead mapping (and its vary header name) must not appear: the
  // variant entry is gone, so the only place "X-Segment" could survive is
  // the vary-name section this test guards.
  EXPECT_EQ(blob.find("X-Segment"), std::string::npos);

  HttpCache thawed(false, total - 1);
  ASSERT_TRUE(thawed.Thaw(blob));
  EXPECT_EQ(thawed.size(), 1u);
  EXPECT_EQ(thawed.Lookup("plain", At(1)).outcome, LookupOutcome::kFreshHit);
}

// Live vary mappings freeze in sorted key order, so two caches holding the
// same contents produce byte-identical blobs regardless of the (unordered)
// in-memory map's insertion history.
TEST(HttpCacheFreezeTest, VarySectionIsCanonicallyOrdered) {
  auto store_varied = [](HttpCache* cache, const std::string& key,
                         uint64_t version) {
    http::HttpResponse resp = Response("max-age=60", 0, version, "seg");
    resp.headers.Set("Vary", "X-Segment");
    http::HeaderMap req;
    req.Set("X-Segment", "a");
    ASSERT_TRUE(cache->Store(key, req, resp, At(0)));
  };
  http::HeaderMap req;
  req.Set("X-Segment", "a");
  HttpCache first(false, 0);
  store_varied(&first, "alpha", 1);
  store_varied(&first, "beta", 2);
  first.Lookup("alpha", req, At(1));  // recency: beta LRU, alpha MRU

  HttpCache second(false, 0);
  store_varied(&second, "beta", 2);  // reversed vary-map insertion order
  store_varied(&second, "alpha", 1);
  second.Lookup("alpha", req, At(1));  // same recency chain as `first`

  EXPECT_EQ(first.Freeze(), second.Freeze());
}

TEST(HttpCacheFreezeTest, CorruptBlobFailsClosedToEmpty) {
  HttpCache cache(false, 0);
  cache.Store("a", Response("max-age=60"), At(0));
  std::string blob = cache.Freeze();

  HttpCache victim(false, 0);
  victim.Store("keep", Response("max-age=60"), At(0));
  EXPECT_FALSE(victim.Thaw(blob.substr(0, blob.size() / 2)));  // truncated
  EXPECT_EQ(victim.size(), 0u);  // cleared, not half-restored

  std::string bad_magic = blob;
  bad_magic[0] = static_cast<char>(bad_magic[0] + 1);
  EXPECT_FALSE(victim.Thaw(bad_magic));
  EXPECT_TRUE(victim.Thaw(blob));  // the pristine blob still works
  EXPECT_EQ(victim.size(), 1u);
}

TEST(HttpCacheFreezeTest, SharedFlagAndCapacityMismatchRejected) {
  HttpCache private_cache(false, 1024);
  private_cache.Store("a", Response("max-age=60"), At(0));
  std::string blob = private_cache.Freeze();
  HttpCache shared_cache(true, 1024);
  EXPECT_FALSE(shared_cache.Thaw(blob));
  HttpCache other_capacity(false, 2048);
  EXPECT_FALSE(other_capacity.Thaw(blob));
}

}  // namespace
}  // namespace speedkit::cache
