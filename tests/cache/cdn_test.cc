#include "cache/cdn.h"

#include <gtest/gtest.h>

namespace speedkit::cache {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

http::HttpResponse CacheableResponse() {
  http::HttpResponse resp;
  resp.status_code = 200;
  resp.body = "x";
  resp.headers.Set("Cache-Control", "public, max-age=60");
  resp.generated_at = At(0);
  return resp;
}

TEST(CdnTest, RoutingIsStablePerClient) {
  Cdn cdn(8, 0);
  for (uint64_t client = 0; client < 50; ++client) {
    int e = cdn.RouteFor(client);
    EXPECT_EQ(e, cdn.RouteFor(client));
    EXPECT_GE(e, 0);
    EXPECT_LT(e, 8);
  }
}

TEST(CdnTest, RoutingSpreadsClients) {
  Cdn cdn(4, 0);
  int counts[4] = {0};
  for (uint64_t client = 0; client < 4000; ++client) {
    counts[cdn.RouteFor(client)]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(CdnTest, AtLeastOneEdge) {
  Cdn cdn(0, 0);
  EXPECT_EQ(cdn.num_edges(), 1);
  EXPECT_EQ(cdn.RouteFor(123), 0);
}

TEST(CdnTest, EdgesAreIndependentCaches) {
  Cdn cdn(2, 0);
  cdn.edge(0).Store("k", CacheableResponse(), At(0));
  EXPECT_EQ(cdn.edge(0).Lookup("k", At(1)).outcome, LookupOutcome::kFreshHit);
  EXPECT_EQ(cdn.edge(1).Lookup("k", At(1)).outcome, LookupOutcome::kMiss);
}

TEST(CdnTest, PurgeAllReachesEveryEdge) {
  Cdn cdn(3, 0);
  for (int i = 0; i < 3; ++i) cdn.edge(i).Store("k", CacheableResponse(), At(0));
  EXPECT_EQ(cdn.PurgeAll("k"), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cdn.edge(i).Lookup("k", At(1)).outcome, LookupOutcome::kMiss);
  }
  EXPECT_EQ(cdn.PurgeAll("k"), 0);
}

TEST(CdnTest, PurgeEdgeIsLocal) {
  Cdn cdn(2, 0);
  cdn.edge(0).Store("k", CacheableResponse(), At(0));
  cdn.edge(1).Store("k", CacheableResponse(), At(0));
  EXPECT_TRUE(cdn.PurgeEdge(0, "k"));
  EXPECT_EQ(cdn.edge(1).Lookup("k", At(1)).outcome, LookupOutcome::kFreshHit);
}

TEST(CdnTest, TotalStatsAggregates) {
  Cdn cdn(2, 0);
  cdn.edge(0).Store("a", CacheableResponse(), At(0));
  cdn.edge(1).Store("b", CacheableResponse(), At(0));
  cdn.edge(0).Lookup("a", At(1));
  cdn.edge(1).Lookup("missing", At(1));
  HttpCacheStats total = cdn.TotalStats();
  EXPECT_EQ(total.stores, 2u);
  EXPECT_EQ(total.fresh_hits, 1u);
  EXPECT_EQ(total.misses, 1u);
}

TEST(CdnTest, EdgesAreSharedCaches) {
  Cdn cdn(1, 0);
  http::HttpResponse priv = CacheableResponse();
  priv.headers.Set("Cache-Control", "private, max-age=60");
  EXPECT_FALSE(cdn.edge(0).Store("k", priv, At(0)));
}

}  // namespace
}  // namespace speedkit::cache
