#include "cache/cdn.h"

#include <gtest/gtest.h>

#include <memory>

namespace speedkit::cache {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

http::HttpResponse CacheableResponse() {
  http::HttpResponse resp;
  resp.status_code = 200;
  resp.body = "x";
  resp.headers.Set("Cache-Control", "public, max-age=60");
  resp.generated_at = At(0);
  return resp;
}

TEST(CdnTest, RoutingIsStablePerClient) {
  Cdn cdn(8, 0);
  for (uint64_t client = 0; client < 50; ++client) {
    int e = cdn.RouteFor(client);
    EXPECT_EQ(e, cdn.RouteFor(client));
    EXPECT_GE(e, 0);
    EXPECT_LT(e, 8);
  }
}

TEST(CdnTest, RoutingSpreadsClients) {
  Cdn cdn(4, 0);
  int counts[4] = {0};
  for (uint64_t client = 0; client < 4000; ++client) {
    counts[cdn.RouteFor(client)]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

// The old ctor silently clamped num_edges to 1; an edge count < 1 is now
// rejected up front by StackConfig::Validate (tests/core/stack_test.cc) —
// constructing a Cdn directly requires a positive count.
TEST(CdnTest, ShardViewsPartitionThePhysicalTier) {
  auto map = std::make_shared<ShardedEdgeMap>(4, 0);
  Cdn shard0(map, 0, 2);  // owns physical edges 0, 2
  Cdn shard1(map, 1, 2);  // owns physical edges 1, 3
  EXPECT_EQ(shard0.num_edges(), 2);
  EXPECT_EQ(shard1.num_edges(), 2);
  EXPECT_EQ(shard0.physical_edges(), 4);

  // Physical->local translation: each physical edge is owned by exactly
  // one shard.
  EXPECT_EQ(shard0.LocalIndexOf(0), 0);
  EXPECT_EQ(shard0.LocalIndexOf(1), -1);
  EXPECT_EQ(shard0.LocalIndexOf(2), 1);
  EXPECT_EQ(shard1.LocalIndexOf(1), 0);
  EXPECT_EQ(shard1.LocalIndexOf(3), 1);
  EXPECT_EQ(shard1.LocalIndexOf(4), -1);  // out of range

  // Shard views alias the shared slots: a store through one view is
  // visible through the full-view translation of the same physical edge.
  shard0.edge(1).Store("k", CacheableResponse(), At(0));  // physical edge 2
  EXPECT_EQ(map->slot(2).cache.Lookup("k", At(1)).outcome,
            LookupOutcome::kFreshHit);

  // Every client is owned by exactly one shard, and routing agrees with
  // the ownership partition.
  for (uint64_t client = 1; client <= 200; ++client) {
    EXPECT_NE(shard0.OwnsClient(client), shard1.OwnsClient(client));
    Cdn& owner = shard0.OwnsClient(client) ? shard0 : shard1;
    int local = owner.RouteFor(client);
    EXPECT_GE(local, 0);
    EXPECT_LT(local, owner.num_edges());
  }
}

TEST(CdnTest, FullViewOwnsEveryClient) {
  Cdn cdn(3, 0);
  EXPECT_EQ(cdn.physical_edges(), 3);
  for (uint64_t client = 1; client <= 50; ++client) {
    EXPECT_TRUE(cdn.OwnsClient(client));
    EXPECT_EQ(cdn.LocalIndexOf(cdn.RouteFor(client)), cdn.RouteFor(client));
  }
}

TEST(CdnTest, ShardFaultAccountingStaysLocal) {
  auto map = std::make_shared<ShardedEdgeMap>(2, 0);
  Cdn shard0(map, 0, 2);
  Cdn shard1(map, 1, 2);
  shard0.SetEdgeDown(0, true);
  EXPECT_FALSE(shard0.EdgeAvailable(0));
  EXPECT_TRUE(shard1.EdgeAvailable(0));  // shard1's edge 0 = physical 1
  shard0.NoteEdgeReject(0);
  EXPECT_FALSE(shard0.PurgeEdge(0, "k"));  // down edge loses the purge
  EXPECT_EQ(shard0.TotalFaultStats().down_rejects, 1u);
  EXPECT_EQ(shard0.TotalFaultStats().purges_dropped, 1u);
  EXPECT_EQ(shard1.TotalFaultStats().down_rejects, 0u);
  EXPECT_EQ(shard1.TotalFaultStats().purges_dropped, 0u);
}

TEST(CdnTest, EdgesAreIndependentCaches) {
  Cdn cdn(2, 0);
  cdn.edge(0).Store("k", CacheableResponse(), At(0));
  EXPECT_EQ(cdn.edge(0).Lookup("k", At(1)).outcome, LookupOutcome::kFreshHit);
  EXPECT_EQ(cdn.edge(1).Lookup("k", At(1)).outcome, LookupOutcome::kMiss);
}

TEST(CdnTest, PurgeAllReachesEveryEdge) {
  Cdn cdn(3, 0);
  for (int i = 0; i < 3; ++i) cdn.edge(i).Store("k", CacheableResponse(), At(0));
  EXPECT_EQ(cdn.PurgeAll("k"), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cdn.edge(i).Lookup("k", At(1)).outcome, LookupOutcome::kMiss);
  }
  EXPECT_EQ(cdn.PurgeAll("k"), 0);
}

TEST(CdnTest, PurgeEdgeIsLocal) {
  Cdn cdn(2, 0);
  cdn.edge(0).Store("k", CacheableResponse(), At(0));
  cdn.edge(1).Store("k", CacheableResponse(), At(0));
  EXPECT_TRUE(cdn.PurgeEdge(0, "k"));
  EXPECT_EQ(cdn.edge(1).Lookup("k", At(1)).outcome, LookupOutcome::kFreshHit);
}

TEST(CdnTest, TotalStatsAggregates) {
  Cdn cdn(2, 0);
  cdn.edge(0).Store("a", CacheableResponse(), At(0));
  cdn.edge(1).Store("b", CacheableResponse(), At(0));
  cdn.edge(0).Lookup("a", At(1));
  cdn.edge(1).Lookup("missing", At(1));
  HttpCacheStats total = cdn.TotalStats();
  EXPECT_EQ(total.stores, 2u);
  EXPECT_EQ(total.fresh_hits, 1u);
  EXPECT_EQ(total.misses, 1u);
}

TEST(CdnTest, EdgesAreSharedCaches) {
  Cdn cdn(1, 0);
  http::HttpResponse priv = CacheableResponse();
  priv.headers.Set("Cache-Control", "private, max-age=60");
  EXPECT_FALSE(cdn.edge(0).Store("k", priv, At(0)));
}

}  // namespace
}  // namespace speedkit::cache
