#include "cache/cdn.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

namespace speedkit::cache {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

http::HttpResponse CacheableResponse() {
  http::HttpResponse resp;
  resp.status_code = 200;
  resp.body = "x";
  resp.headers.Set("Cache-Control", "public, max-age=60");
  resp.generated_at = At(0);
  return resp;
}

TEST(CdnTest, RoutingIsStablePerClient) {
  Cdn cdn(8, 0);
  for (uint64_t client = 0; client < 50; ++client) {
    int e = cdn.RouteFor(client);
    EXPECT_EQ(e, cdn.RouteFor(client));
    EXPECT_GE(e, 0);
    EXPECT_LT(e, 8);
  }
}

TEST(CdnTest, RoutingSpreadsClients) {
  Cdn cdn(4, 0);
  int counts[4] = {0};
  for (uint64_t client = 0; client < 4000; ++client) {
    counts[cdn.RouteFor(client)]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

// The old ctor silently clamped num_edges to 1; an edge count < 1 is now
// rejected up front by StackConfig::Validate (tests/core/stack_test.cc) —
// constructing a Cdn directly requires a positive count.
TEST(CdnTest, ShardViewsPartitionThePhysicalTier) {
  auto map = std::make_shared<ShardedEdgeMap>(4, 0);
  Cdn shard0(map, 0, 2);  // owns physical edges 0, 2
  Cdn shard1(map, 1, 2);  // owns physical edges 1, 3
  EXPECT_EQ(shard0.num_edges(), 2);
  EXPECT_EQ(shard1.num_edges(), 2);
  EXPECT_EQ(shard0.physical_edges(), 4);

  // Physical->local translation: each physical edge is owned by exactly
  // one shard.
  EXPECT_EQ(shard0.LocalIndexOf(0), 0);
  EXPECT_EQ(shard0.LocalIndexOf(1), -1);
  EXPECT_EQ(shard0.LocalIndexOf(2), 1);
  EXPECT_EQ(shard1.LocalIndexOf(1), 0);
  EXPECT_EQ(shard1.LocalIndexOf(3), 1);
  EXPECT_EQ(shard1.LocalIndexOf(4), -1);  // out of range

  // Shard views alias the shared slots: a store through one view is
  // visible through the full-view translation of the same physical edge.
  shard0.edge(1).Store("k", CacheableResponse(), At(0));  // physical edge 2
  EXPECT_EQ(map->slot(2).cache.Lookup("k", At(1)).outcome,
            LookupOutcome::kFreshHit);

  // Every client is owned by exactly one shard, and routing agrees with
  // the ownership partition.
  for (uint64_t client = 1; client <= 200; ++client) {
    EXPECT_NE(shard0.OwnsClient(client), shard1.OwnsClient(client));
    Cdn& owner = shard0.OwnsClient(client) ? shard0 : shard1;
    int local = owner.RouteFor(client);
    EXPECT_GE(local, 0);
    EXPECT_LT(local, owner.num_edges());
  }
}

TEST(CdnTest, FullViewOwnsEveryClient) {
  Cdn cdn(3, 0);
  EXPECT_EQ(cdn.physical_edges(), 3);
  for (uint64_t client = 1; client <= 50; ++client) {
    EXPECT_TRUE(cdn.OwnsClient(client));
    EXPECT_EQ(cdn.LocalIndexOf(cdn.RouteFor(client)), cdn.RouteFor(client));
  }
}

TEST(CdnTest, ShardFaultAccountingStaysLocal) {
  auto map = std::make_shared<ShardedEdgeMap>(2, 0);
  Cdn shard0(map, 0, 2);
  Cdn shard1(map, 1, 2);
  shard0.SetEdgeDown(0, true);
  EXPECT_FALSE(shard0.EdgeAvailable(0));
  EXPECT_TRUE(shard1.EdgeAvailable(0));  // shard1's edge 0 = physical 1
  shard0.NoteEdgeReject(0);
  EXPECT_FALSE(shard0.PurgeEdge(0, "k"));  // down edge loses the purge
  EXPECT_EQ(shard0.TotalFaultStats().down_rejects, 1u);
  EXPECT_EQ(shard0.TotalFaultStats().purges_dropped, 1u);
  EXPECT_EQ(shard1.TotalFaultStats().down_rejects, 0u);
  EXPECT_EQ(shard1.TotalFaultStats().purges_dropped, 0u);
}

TEST(CdnTest, EdgesAreIndependentCaches) {
  Cdn cdn(2, 0);
  cdn.edge(0).Store("k", CacheableResponse(), At(0));
  EXPECT_EQ(cdn.edge(0).Lookup("k", At(1)).outcome, LookupOutcome::kFreshHit);
  EXPECT_EQ(cdn.edge(1).Lookup("k", At(1)).outcome, LookupOutcome::kMiss);
}

TEST(CdnTest, PurgeAllReachesEveryEdge) {
  Cdn cdn(3, 0);
  for (int i = 0; i < 3; ++i) cdn.edge(i).Store("k", CacheableResponse(), At(0));
  EXPECT_EQ(cdn.PurgeAll("k"), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cdn.edge(i).Lookup("k", At(1)).outcome, LookupOutcome::kMiss);
  }
  EXPECT_EQ(cdn.PurgeAll("k"), 0);
}

TEST(CdnTest, PurgeEdgeIsLocal) {
  Cdn cdn(2, 0);
  cdn.edge(0).Store("k", CacheableResponse(), At(0));
  cdn.edge(1).Store("k", CacheableResponse(), At(0));
  EXPECT_TRUE(cdn.PurgeEdge(0, "k"));
  EXPECT_EQ(cdn.edge(1).Lookup("k", At(1)).outcome, LookupOutcome::kFreshHit);
}

TEST(CdnTest, TotalStatsAggregates) {
  Cdn cdn(2, 0);
  cdn.edge(0).Store("a", CacheableResponse(), At(0));
  cdn.edge(1).Store("b", CacheableResponse(), At(0));
  cdn.edge(0).Lookup("a", At(1));
  cdn.edge(1).Lookup("missing", At(1));
  HttpCacheStats total = cdn.TotalStats();
  EXPECT_EQ(total.stores, 2u);
  EXPECT_EQ(total.fresh_hits, 1u);
  EXPECT_EQ(total.misses, 1u);
}

TEST(CdnTest, EdgesAreSharedCaches) {
  Cdn cdn(1, 0);
  http::HttpResponse priv = CacheableResponse();
  priv.headers.Set("Cache-Control", "private, max-age=60");
  EXPECT_FALSE(cdn.edge(0).Store("k", priv, At(0)));
}

TEST(CdnTest, EdgeSlotsAreCacheLineAligned) {
  // Adjacent physical edges belong to DIFFERENT shards under the
  // e % shards interleaving, so slots must never share a cache line.
  static_assert(alignof(ShardedEdgeMap::EdgeSlot) == kCacheLineBytes,
                "EdgeSlot must be cache-line aligned");
  ShardedEdgeMap map(4, 0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(&map.slot(i)) % kCacheLineBytes, 0u);
  }
}

TEST(CdnTest, RemotePurgeTakesEffectAtDrainNotAtPost) {
  auto map = std::make_shared<ShardedEdgeMap>(4, 0);
  Cdn shard0(map, 0, 2);  // owns physical 0, 2
  Cdn shard1(map, 1, 2);  // owns physical 1, 3

  // Owner stores the key on physical edge 1 (shard1's local 0).
  shard1.edge(0).Store("k", CacheableResponse(), At(0));

  // A non-owner purges it via the mailbox: nothing happens until the
  // OWNER drains at its coherence boundary.
  shard0.PostRemotePurge(/*physical=*/1, "k", At(1));
  EXPECT_EQ(shard0.remote_purges_posted(), 1u);
  EXPECT_EQ(shard1.edge(0).Lookup("k", At(2)).outcome,
            LookupOutcome::kFreshHit);

  // The sender draining its OWN mailbox is a no-op for this note.
  EXPECT_EQ(shard0.DrainRemotePurges(At(3)), 0u);
  EXPECT_EQ(shard1.edge(0).Lookup("k", At(3)).outcome,
            LookupOutcome::kFreshHit);

  // The owner's drain applies it.
  EXPECT_EQ(shard1.DrainRemotePurges(At(4)), 1u);
  EXPECT_EQ(shard1.remote_purges_drained(), 1u);
  EXPECT_EQ(shard1.remote_purges_effective(), 1u);
  EXPECT_EQ(shard1.edge(0).Lookup("k", At(5)).outcome, LookupOutcome::kMiss);
}

TEST(CdnTest, RemotePurgeToDownEdgeIsCountedDropped) {
  auto map = std::make_shared<ShardedEdgeMap>(2, 0);
  Cdn shard0(map, 0, 2);
  Cdn shard1(map, 1, 2);
  shard1.edge(0).Store("k", CacheableResponse(), At(0));  // physical 1
  shard1.SetEdgeDown(0, true);
  shard0.PostRemotePurge(1, "k", At(1));
  // The note is drained (it left the mailbox) but the down edge loses the
  // purge — same accounting as a local purge against a down edge.
  EXPECT_EQ(shard1.DrainRemotePurges(At(2)), 1u);
  EXPECT_EQ(shard1.remote_purges_drained(), 1u);
  EXPECT_EQ(shard1.remote_purges_effective(), 0u);
  EXPECT_EQ(shard1.TotalFaultStats().purges_dropped, 1u);
  shard1.SetEdgeDown(0, false);
  EXPECT_EQ(shard1.edge(0).Lookup("k", At(3)).outcome,
            LookupOutcome::kFreshHit);  // contents survived the outage
}

TEST(CdnTest, SelfLaneRemotePurgeWorks) {
  // PostRemotePurge resolves ownership itself: a shard may post a purge
  // for an edge it owns and pick it up at its own next drain.
  auto map = std::make_shared<ShardedEdgeMap>(2, 0);
  Cdn shard0(map, 0, 2);
  Cdn shard1(map, 1, 2);
  (void)shard1;
  shard0.edge(0).Store("k", CacheableResponse(), At(0));  // physical 0
  shard0.PostRemotePurge(0, "k", At(1));
  EXPECT_EQ(shard0.DrainRemotePurges(At(2)), 1u);
  EXPECT_EQ(shard0.edge(0).Lookup("k", At(3)).outcome, LookupOutcome::kMiss);
}

uint64_t FaultStatsFingerprint(const EdgeFaultStats& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(s.down_rejects);
  mix(s.purges_dropped);
  mix(s.purges_delayed);
  mix(s.purge_delay_us.Fingerprint());
  return h;
}

TEST(CdnTest, ShardLocalAccumulatorsMergeLikeAFullView) {
  // The refactor moved fault counters from shared, mutex-guarded slots
  // into per-shard aligned accumulators. The merge contract is unchanged:
  // summing the shard views' TotalFaultStats must equal — bit for bit,
  // histogram fingerprints included — a full view fed the identical
  // per-physical-edge event sequence.
  auto note_events = [](auto&& reject, auto&& dropped, auto&& delayed,
                        auto&& scheduled) {
    // A fixed script over PHYSICAL edges 0..3.
    reject(0); reject(0); reject(3);
    dropped(1); dropped(2);
    delayed(2); delayed(2); delayed(3);
    scheduled(0, Duration::Millis(5));
    scheduled(1, Duration::Millis(70));
    scheduled(2, Duration::Millis(70));
    scheduled(3, Duration::Millis(250));
  };

  // Full (legacy, single-domain) view.
  Cdn full(4, 0);
  note_events([&](int e) { full.NoteEdgeReject(e); },
              [&](int e) { full.NotePurgeDropped(e); },
              [&](int e) { full.NotePurgeDelayed(e); },
              [&](int e, Duration d) { full.NotePurgeScheduled(e, d); });

  // Two shard views over one map; each receives only its owned edges'
  // events, translated to local indices — exactly how the fault schedule
  // mirrors events per shard.
  auto map = std::make_shared<ShardedEdgeMap>(4, 0);
  Cdn s0(map, 0, 2);
  Cdn s1(map, 1, 2);
  auto route = [&](int physical) -> std::pair<Cdn*, int> {
    Cdn* owner = physical % 2 == 0 ? &s0 : &s1;
    return {owner, owner->LocalIndexOf(physical)};
  };
  note_events(
      [&](int e) { auto [c, l] = route(e); c->NoteEdgeReject(l); },
      [&](int e) { auto [c, l] = route(e); c->NotePurgeDropped(l); },
      [&](int e) { auto [c, l] = route(e); c->NotePurgeDelayed(l); },
      [&](int e, Duration d) {
        auto [c, l] = route(e);
        c->NotePurgeScheduled(l, d);
      });

  EdgeFaultStats merged = s0.TotalFaultStats();
  merged += s1.TotalFaultStats();
  EdgeFaultStats legacy = full.TotalFaultStats();
  EXPECT_EQ(merged.down_rejects, legacy.down_rejects);
  EXPECT_EQ(merged.purges_dropped, legacy.purges_dropped);
  EXPECT_EQ(merged.purges_delayed, legacy.purges_delayed);
  EXPECT_EQ(FaultStatsFingerprint(merged), FaultStatsFingerprint(legacy));
}

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
TEST(CdnDeathTest, OwnershipAssertionFiresOnCrossShardAccess) {
  // The runtime fence that replaced the striped locks: in debug builds,
  // touching a slot another shard owns aborts with the ownership message.
  auto map = std::make_shared<ShardedEdgeMap>(4, 0);
  Cdn shard0(map, 0, 2);
  Cdn shard1(map, 1, 2);
  (void)shard0;
  (void)shard1;
  EXPECT_DEATH(map->owned_slot(/*physical=*/1, /*shard=*/0),
               "cross-shard edge access");
}
#endif

}  // namespace
}  // namespace speedkit::cache
