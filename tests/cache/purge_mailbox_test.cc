// The cross-shard purge mailboxes: SPSC ring semantics, deterministic
// drain order (ascending producer, FIFO within one), FIFO survival across
// a ring-full overflow episode, and a two-thread SPSC race for TSan.
#include "cache/purge_mailbox.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace speedkit::cache {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

PurgeNote Note(int edge, const std::string& key) {
  return PurgeNote{edge, At(0), key};
}

TEST(SpscPurgeRingTest, FifoWithinCapacity) {
  SpscPurgeRing ring(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.TryPush(Note(i, "k" + std::to_string(i))));
  }
  EXPECT_EQ(ring.SizeApprox(), 5u);
  PurgeNote out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out.edge, i);
    EXPECT_EQ(out.key, "k" + std::to_string(i));
  }
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscPurgeRingTest, RejectsWhenFullAndRecovers) {
  SpscPurgeRing ring(4);  // capacity rounds to 4
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(Note(i, "k")));
  EXPECT_FALSE(ring.TryPush(Note(99, "overflow")));
  PurgeNote out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out.edge, 0);
  EXPECT_TRUE(ring.TryPush(Note(4, "k")));  // slot freed
}

TEST(SpscPurgeRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscPurgeRing(3).capacity(), 4u);
  EXPECT_EQ(SpscPurgeRing(1000).capacity(), 1024u);
}

TEST(PurgeMailboxGridTest, DrainsAscendingProducerThenFifo) {
  PurgeMailboxGrid grid(3);
  // Producers post out of producer order; drain must still be
  // (producer 0 FIFO, then producer 1 FIFO, ...).
  grid.Post(2, 0, Note(0, "from2-a"));
  grid.Post(0, 0, Note(0, "from0-a"));
  grid.Post(2, 0, Note(0, "from2-b"));
  grid.Post(0, 0, Note(0, "from0-b"));
  std::vector<std::string> seen;
  size_t n = grid.Drain(0, [&](const PurgeNote& note) { seen.push_back(note.key); });
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(seen, (std::vector<std::string>{"from0-a", "from0-b", "from2-a",
                                            "from2-b"}));
}

TEST(PurgeMailboxGridTest, LanesAreIndependentPerConsumer) {
  PurgeMailboxGrid grid(2);
  grid.Post(0, 1, Note(1, "to1"));
  grid.Post(1, 0, Note(0, "to0"));
  EXPECT_EQ(grid.PendingApprox(0), 1u);
  EXPECT_EQ(grid.PendingApprox(1), 1u);
  std::vector<std::string> seen0;
  grid.Drain(0, [&](const PurgeNote& n) { seen0.push_back(n.key); });
  EXPECT_EQ(seen0, std::vector<std::string>{"to0"});
  EXPECT_EQ(grid.PendingApprox(0), 0u);
  EXPECT_EQ(grid.PendingApprox(1), 1u);  // undrained consumer keeps its mail
}

TEST(PurgeMailboxGridTest, OverflowPreservesPerProducerFifo) {
  // Ring capacity 4: posting 10 notes forces an overflow episode; the
  // diversion flag must keep every note in posting order across the
  // ring/overflow seam, and keep new posts diverted until a drain.
  PurgeMailboxGrid grid(2, /*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    grid.Post(0, 1, Note(1, "k" + std::to_string(i)));
  }
  EXPECT_EQ(grid.PendingApprox(1), 10u);
  std::vector<std::string> seen;
  size_t n = grid.Drain(1, [&](const PurgeNote& note) { seen.push_back(note.key); });
  EXPECT_EQ(n, 10u);
  ASSERT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[i], "k" + std::to_string(i));

  // After the drain the lane is back on the lock-free ring path.
  grid.Post(0, 1, Note(1, "fresh"));
  seen.clear();
  grid.Drain(1, [&](const PurgeNote& note) { seen.push_back(note.key); });
  EXPECT_EQ(seen, std::vector<std::string>{"fresh"});
}

TEST(PurgeMailboxGridTest, DrainAtBoundarySeesEverythingPostedBefore) {
  // The engine's use pattern: posts happen while shards are quiescent;
  // the next drain (coherence boundary) applies the whole batch at once.
  PurgeMailboxGrid grid(2);
  size_t applied = grid.Drain(1, [](const PurgeNote&) {});
  EXPECT_EQ(applied, 0u);  // nothing posted -> boundary is a no-op
  for (int i = 0; i < 3; ++i) grid.Post(0, 1, Note(1, "k"));
  applied = grid.Drain(1, [](const PurgeNote&) {});
  EXPECT_EQ(applied, 3u);  // one batch, not one-at-a-time
  EXPECT_EQ(grid.Drain(1, [](const PurgeNote&) {}), 0u);
}

TEST(PurgeMailboxGridTest, ConcurrentSpscProducerConsumer) {
  // One producer thread, one consumer thread on a single lane — the
  // shape TSan checks. Small ring so the overflow path races too.
  PurgeMailboxGrid grid(2, /*ring_capacity=*/8);
  constexpr int kNotes = 5000;
  std::thread producer([&] {
    for (int i = 0; i < kNotes; ++i) grid.Post(0, 1, Note(1, std::to_string(i)));
  });
  std::vector<std::string> seen;
  seen.reserve(kNotes);
  while (seen.size() < kNotes) {
    grid.Drain(1, [&](const PurgeNote& note) { seen.push_back(note.key); });
  }
  producer.join();
  ASSERT_EQ(seen.size(), static_cast<size_t>(kNotes));
  for (int i = 0; i < kNotes; ++i) EXPECT_EQ(seen[i], std::to_string(i));
}

}  // namespace
}  // namespace speedkit::cache
