// Randomized differential test: LruCache against a trivially-correct
// reference model, across capacities and operation mixes.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <string>
#include <tuple>

#include "cache/lru_cache.h"
#include "common/random.h"

namespace speedkit::cache {
namespace {

// Reference: ordered list of (key, value), front = most recent, with the
// same byte budget and whole-entry eviction policy.
class ReferenceLru {
 public:
  explicit ReferenceLru(size_t capacity) : capacity_(capacity) {}

  const std::string* Get(const std::string& key) {
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (it->first == key) {
        order_.splice(order_.begin(), order_, it);
        return &order_.front().second;
      }
    }
    return nullptr;
  }

  void Put(const std::string& key, std::string value) {
    if (capacity_ != 0 && value.size() > capacity_) {
      Erase(key);
      return;
    }
    Erase(key);
    order_.emplace_front(key, std::move(value));
    if (capacity_ != 0) {
      size_t used = 0;
      for (const auto& [k, v] : order_) used += v.size();
      while (used > capacity_ && !order_.empty()) {
        used -= order_.back().second.size();
        order_.pop_back();
      }
    }
  }

  bool Erase(const std::string& key) {
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (it->first == key) {
        order_.erase(it);
        return true;
      }
    }
    return false;
  }

  size_t size() const { return order_.size(); }
  size_t used_bytes() const {
    size_t used = 0;
    for (const auto& [k, v] : order_) used += v.size();
    return used;
  }

 private:
  size_t capacity_;
  std::list<std::pair<std::string, std::string>> order_;
};

class LruFuzz : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {
};

TEST_P(LruFuzz, MatchesReferenceModel) {
  auto [capacity, seed] = GetParam();
  LruCache<std::string> cache(
      capacity, [](const std::string& s) { return s.size(); });
  ReferenceLru reference(capacity);
  Pcg32 rng(seed);

  for (int op = 0; op < 5000; ++op) {
    std::string key = "k" + std::to_string(rng.NextBounded(20));
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {  // Put with random size
        std::string value(rng.NextBounded(40), 'v');
        cache.Put(key, value);
        reference.Put(key, value);
        break;
      }
      case 2: {  // Get
        std::string* got = cache.Get(key);
        const std::string* expected = reference.Get(key);
        ASSERT_EQ(got != nullptr, expected != nullptr)
            << "op " << op << " key " << key;
        if (got != nullptr) ASSERT_EQ(*got, *expected);
        break;
      }
      case 3: {  // Erase
        ASSERT_EQ(cache.Erase(key), reference.Erase(key)) << "op " << op;
        break;
      }
    }
    ASSERT_EQ(cache.size(), reference.size()) << "op " << op;
    ASSERT_EQ(cache.used_bytes(), reference.used_bytes()) << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CapacitiesAndSeeds, LruFuzz,
    ::testing::Combine(::testing::Values(size_t{0}, size_t{50}, size_t{200},
                                         size_t{1000}),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace speedkit::cache
