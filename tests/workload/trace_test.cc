#include "workload/trace.h"

#include <gtest/gtest.h>

namespace speedkit::workload {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

Trace SampleTrace() {
  Trace trace;
  trace.AddFetch(At(1), 7, "https://shop.example.com/api/records/p1");
  trace.AddWrite(At(2), "p1",
                 {{"price", 19.5},
                  {"stock", static_cast<int64_t>(3)},
                  {"title", std::string("Shoe\twith tab")},
                  {"on_sale", true}});
  trace.AddFetch(At(3), 8, "https://shop.example.com/pages/home");
  return trace;
}

TEST(TraceTest, SerializeDeserializeRoundTrip) {
  Trace original = SampleTrace();
  auto restored = Trace::Deserialize(original.Serialize());
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 3u);
  const auto& events = restored->events();

  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kFetch);
  EXPECT_EQ(events[0].at, At(1));
  EXPECT_EQ(events[0].client_id, 7u);
  EXPECT_EQ(events[0].url, "https://shop.example.com/api/records/p1");

  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kWrite);
  EXPECT_EQ(events[1].record_id, "p1");
  ASSERT_EQ(events[1].fields.size(), 4u);
  EXPECT_DOUBLE_EQ(std::get<double>(events[1].fields.at("price")), 19.5);
  EXPECT_EQ(std::get<int64_t>(events[1].fields.at("stock")), 3);
  EXPECT_EQ(std::get<std::string>(events[1].fields.at("title")),
            "Shoe\twith tab");
  EXPECT_EQ(std::get<bool>(events[1].fields.at("on_sale")), true);
}

TEST(TraceTest, DoubleRoundTripIsStable) {
  std::string once = SampleTrace().Serialize();
  auto restored = Trace::Deserialize(once);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Serialize(), once);
}

TEST(TraceTest, EmptyTrace) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  auto restored = Trace::Deserialize(trace.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

TEST(TraceTest, SortByTimeIsStableForTies) {
  Trace trace;
  trace.AddFetch(At(5), 1, "b");
  trace.AddFetch(At(1), 2, "a");
  trace.AddFetch(At(5), 3, "c");  // tie with first
  trace.SortByTime();
  EXPECT_EQ(trace.events()[0].url, "a");
  EXPECT_EQ(trace.events()[1].url, "b");
  EXPECT_EQ(trace.events()[2].url, "c");
}

TEST(TraceTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Trace::Deserialize("X\t1\t2\n").ok());
  EXPECT_FALSE(Trace::Deserialize("F\tabc\t1\turl\n").ok());
  EXPECT_FALSE(Trace::Deserialize("F\t1\tnotnum\turl\n").ok());
  EXPECT_FALSE(Trace::Deserialize("F\t1\t2\n").ok());           // no url
  EXPECT_FALSE(Trace::Deserialize("W\t1\tp1\tnovalue\n").ok()); // no '='
  EXPECT_FALSE(Trace::Deserialize("W\t1\tp1\tf=z:9\n").ok());   // bad tag
  EXPECT_FALSE(Trace::Deserialize("W\t1\tp1\tf=i:xy\n").ok());  // bad int
}

TEST(TraceTest, NegativeIntsSupported) {
  Trace trace;
  trace.AddWrite(At(1), "p", {{"delta", static_cast<int64_t>(-42)}});
  auto restored = Trace::Deserialize(trace.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(std::get<int64_t>(restored->events()[0].fields.at("delta")), -42);
}

TEST(TraceTest, BlankLinesIgnored) {
  auto restored = Trace::Deserialize("\n\nF\t1000000\t1\turl-x\n\n");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 1u);
}

}  // namespace
}  // namespace speedkit::workload
