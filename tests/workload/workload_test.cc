#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/catalog.h"
#include "workload/session.h"
#include "workload/write_process.h"
#include "workload/zipf.h"

namespace speedkit::workload {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

TEST(ZipfTest, UniformWhenSZero) {
  ZipfGenerator zipf(10, 0.0);
  for (size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-9);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfGenerator zipf(1000, 0.99);
  double sum = 0;
  for (size_t k = 0; k < 1000; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, SkewConcentratesMassOnHead) {
  ZipfGenerator zipf(10000, 0.99);
  // Rank-0 mass under Zipf(0.99, 10k) is ~10%.
  EXPECT_GT(zipf.Pmf(0), 0.05);
  EXPECT_LT(zipf.Pmf(9999), zipf.Pmf(0) / 1000);
}

TEST(ZipfTest, SamplesFollowPmf) {
  ZipfGenerator zipf(100, 0.8);
  Pcg32 rng(5);
  std::map<size_t, int> counts;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.Sample(rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), zipf.Pmf(0), 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), zipf.Pmf(1), 0.01);
  EXPECT_NEAR(counts[50] / static_cast<double>(kDraws), zipf.Pmf(50), 0.005);
}

TEST(ZipfTest, SamplesAlwaysInRange) {
  ZipfGenerator zipf(7, 1.2);
  Pcg32 rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 7u);
}

TEST(ZipfTest, DegenerateSingleItem) {
  ZipfGenerator zipf(1, 0.9);
  Pcg32 rng(3);
  EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.Pmf(0), 1.0);
}

TEST(WriteProcessTest, InterArrivalMatchesRate) {
  WriteProcess writes(100, /*writes_per_sec=*/5.0, 0.8, Pcg32(7));
  SimTime t = SimTime::Origin();
  constexpr int kEvents = 20000;
  for (int i = 0; i < kEvents; ++i) {
    WriteEvent ev = writes.Next(t);
    EXPECT_GT(ev.at, t);
    EXPECT_LT(ev.object_rank, 100u);
    t = ev.at;
  }
  // 20000 events at 5/s should take ~4000 s.
  EXPECT_NEAR(t.seconds(), kEvents / 5.0, kEvents / 5.0 * 0.05);
}

TEST(WriteProcessTest, ZeroRateNeverFires) {
  WriteProcess writes(100, 0.0, 0.8, Pcg32(7));
  EXPECT_EQ(writes.Next(At(0)).at, SimTime::Max());
}

TEST(WriteProcessTest, SkewTargetsHotObjects) {
  WriteProcess writes(1000, 10.0, 1.2, Pcg32(7));
  std::map<size_t, int> counts;
  SimTime t = SimTime::Origin();
  for (int i = 0; i < 10000; ++i) {
    WriteEvent ev = writes.Next(t);
    counts[ev.object_rank]++;
    t = ev.at;
  }
  EXPECT_GT(counts[0], counts.count(900) ? counts[900] * 10 : 100);
}

TEST(CatalogTest, DeterministicForSameSeed) {
  CatalogConfig config;
  config.num_products = 100;
  Catalog a(config, Pcg32(42));
  Catalog b(config, Pcg32(42));
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.CategoryOf(i), b.CategoryOf(i));
  }
}

TEST(CatalogTest, UrlsFollowKeyConvention) {
  CatalogConfig config;
  config.num_products = 10;
  Catalog catalog(config, Pcg32(1));
  EXPECT_EQ(catalog.ProductUrl(3),
            "https://shop.example.com/api/records/p3");
  EXPECT_EQ(catalog.CategoryUrl(2),
            "https://shop.example.com/api/queries/cat-2");
}

TEST(CatalogTest, PopulateInsertsAllProducts) {
  CatalogConfig config;
  config.num_products = 50;
  Catalog catalog(config, Pcg32(1));
  storage::ObjectStore store;
  catalog.Populate(&store, At(0));
  EXPECT_EQ(store.size(), 50u);
  auto r = store.Get("p7");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->GetField("category"), nullptr);
  EXPECT_NE(r->GetField("price"), nullptr);
}

TEST(CatalogTest, CategoryQueryMatchesItsProducts) {
  CatalogConfig config;
  config.num_products = 100;
  Catalog catalog(config, Pcg32(1));
  storage::ObjectStore store;
  catalog.Populate(&store, At(0));
  int category = catalog.CategoryOf(0);
  invalidation::Query q = catalog.CategoryQuery(category);
  auto r = store.Get("p0");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(q.Matches(*r));
}

TEST(CatalogTest, PriceUpdateChangesPriceWithinBand) {
  CatalogConfig config;
  config.num_products = 10;
  Catalog catalog(config, Pcg32(1));
  Pcg32 rng(9);
  auto fields = catalog.PriceUpdate(3, rng);
  ASSERT_TRUE(fields.count("price"));
  ASSERT_TRUE(fields.count("on_sale"));
  double price = std::get<double>(fields["price"]);
  EXPECT_GT(price, 0.0);
}

TEST(SessionTest, SessionsAreNonEmptyAndBounded) {
  CatalogConfig cconfig;
  cconfig.num_products = 100;
  Catalog catalog(cconfig, Pcg32(1));
  SessionConfig sconfig;
  sconfig.max_pages = 20;
  SessionGenerator gen(&catalog, sconfig, Pcg32(5));
  for (int i = 0; i < 200; ++i) {
    auto session = gen.NextSession();
    ASSERT_GE(session.size(), 1u);
    ASSERT_LE(session.size(), 20u);
    EXPECT_EQ(session[0].think_time_before, Duration::Zero());
  }
}

TEST(SessionTest, ProductViewsCarryValidRanksAndCategories) {
  CatalogConfig cconfig;
  cconfig.num_products = 100;
  Catalog catalog(cconfig, Pcg32(1));
  SessionGenerator gen(&catalog, SessionConfig{}, Pcg32(5));
  for (int i = 0; i < 100; ++i) {
    for (const PageView& view : gen.NextSession()) {
      if (view.type == PageType::kProduct) {
        EXPECT_LT(view.product_rank, 100u);
        EXPECT_EQ(view.category, catalog.CategoryOf(view.product_rank));
      }
    }
  }
}

TEST(SessionTest, CartEndsSession) {
  CatalogConfig cconfig;
  cconfig.num_products = 100;
  Catalog catalog(cconfig, Pcg32(1));
  SessionGenerator gen(&catalog, SessionConfig{}, Pcg32(5));
  for (int i = 0; i < 200; ++i) {
    auto session = gen.NextSession();
    for (size_t j = 0; j < session.size(); ++j) {
      if (session[j].type == PageType::kCart) {
        EXPECT_EQ(j, session.size() - 1);
      }
    }
  }
}

TEST(SessionTest, ThinkTimesArePositiveAfterFirstPage) {
  CatalogConfig cconfig;
  cconfig.num_products = 100;
  Catalog catalog(cconfig, Pcg32(1));
  SessionGenerator gen(&catalog, SessionConfig{}, Pcg32(5));
  for (int i = 0; i < 50; ++i) {
    auto session = gen.NextSession();
    for (size_t j = 1; j < session.size(); ++j) {
      EXPECT_GT(session[j].think_time_before, Duration::Zero());
    }
  }
}

}  // namespace
}  // namespace speedkit::workload
