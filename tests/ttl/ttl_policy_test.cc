#include "ttl/ttl_policy.h"

#include <gtest/gtest.h>

#include <cmath>

namespace speedkit::ttl {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

TEST(FixedTtlPolicyTest, AlwaysReturnsConfiguredTtl) {
  FixedTtlPolicy policy(Duration::Seconds(60));
  EXPECT_EQ(policy.TtlFor("a", At(0)), Duration::Seconds(60));
  policy.ObserveWrite("a", At(1));  // ignored
  EXPECT_EQ(policy.TtlFor("a", At(2)), Duration::Seconds(60));
}

TEST(NoCachePolicyTest, ZeroTtl) {
  NoCachePolicy policy;
  EXPECT_EQ(policy.TtlFor("a", At(0)), Duration::Zero());
}

TEST(EstimatedTtlPolicyTest, ColdStartUsesDefault) {
  EstimatorConfig config;
  config.cold_start_ttl = Duration::Seconds(42);
  EstimatedTtlPolicy policy(config);
  EXPECT_EQ(policy.TtlFor("never-written", At(0)), Duration::Seconds(42));
  EXPECT_EQ(policy.stats().cold_starts, 1u);
}

TEST(EstimatedTtlPolicyTest, OneWriteIsStillColdStart) {
  EstimatedTtlPolicy policy;
  policy.ObserveWrite("k", At(0));
  EXPECT_EQ(policy.TtlFor("k", At(1)),
            EstimatorConfig{}.cold_start_ttl);
}

TEST(EstimatedTtlPolicyTest, TtlTracksInterWriteGap) {
  EstimatorConfig config;
  config.invalidation_budget = 0.3;  // factor = -ln(0.7) ~ 0.357
  config.min_ttl = Duration::Seconds(1);
  config.max_ttl = Duration::Seconds(100000);
  EstimatedTtlPolicy policy(config);
  // Steady 100 s gaps.
  for (int i = 0; i <= 20; ++i) policy.ObserveWrite("k", At(100.0 * i));
  Duration ttl = policy.TtlFor("k", At(2100));
  double expected = -std::log(0.7) * 100.0;
  EXPECT_NEAR(ttl.seconds(), expected, 1.0);
  EXPECT_NEAR(policy.EstimatedGap("k").seconds(), 100.0, 0.5);
}

TEST(EstimatedTtlPolicyTest, HigherBudgetGivesLongerTtl) {
  EstimatorConfig lo;
  lo.invalidation_budget = 0.1;
  EstimatorConfig hi;
  hi.invalidation_budget = 0.7;
  EstimatedTtlPolicy lo_policy(lo);
  EstimatedTtlPolicy hi_policy(hi);
  for (int i = 0; i <= 10; ++i) {
    lo_policy.ObserveWrite("k", At(100.0 * i));
    hi_policy.ObserveWrite("k", At(100.0 * i));
  }
  EXPECT_LT(lo_policy.TtlFor("k", At(1100)), hi_policy.TtlFor("k", At(1100)));
}

TEST(EstimatedTtlPolicyTest, ClampsToBounds) {
  EstimatorConfig config;
  config.min_ttl = Duration::Seconds(10);
  config.max_ttl = Duration::Seconds(60);
  EstimatedTtlPolicy policy(config);
  // Very fast writes: raw estimate below min.
  for (int i = 0; i <= 10; ++i) policy.ObserveWrite("fast", At(0.1 * i));
  EXPECT_EQ(policy.TtlFor("fast", At(2)), Duration::Seconds(10));
  // Very slow writes: raw estimate above max.
  for (int i = 0; i <= 3; ++i) policy.ObserveWrite("slow", At(100000.0 * i));
  EXPECT_EQ(policy.TtlFor("slow", At(400000)), Duration::Seconds(60));
}

TEST(EstimatedTtlPolicyTest, EwmaAdaptsToRateChange) {
  EstimatorConfig config;
  config.alpha = 0.5;  // fast adaptation for the test
  config.max_ttl = Duration::Seconds(100000);
  EstimatedTtlPolicy policy(config);
  double t = 0;
  for (int i = 0; i < 10; ++i) {
    policy.ObserveWrite("k", At(t));
    t += 1000.0;
  }
  Duration slow_ttl = policy.TtlFor("k", At(t));
  // Rate jumps 100x.
  for (int i = 0; i < 20; ++i) {
    policy.ObserveWrite("k", At(t));
    t += 10.0;
  }
  Duration fast_ttl = policy.TtlFor("k", At(t));
  EXPECT_LT(fast_ttl.seconds(), slow_ttl.seconds() / 10.0);
}

TEST(EstimatedTtlPolicyTest, KeysAreIndependent) {
  EstimatedTtlPolicy policy;
  for (int i = 0; i <= 5; ++i) policy.ObserveWrite("hot", At(10.0 * i));
  for (int i = 0; i <= 5; ++i) policy.ObserveWrite("cold", At(10000.0 * i));
  EXPECT_LT(policy.TtlFor("hot", At(60000)).micros(),
            policy.TtlFor("cold", At(60000)).micros());
  EXPECT_EQ(policy.stats().tracked_keys, 2u);
}

TEST(EstimatedTtlPolicyTest, SimultaneousWritesDontPoisonEwma) {
  EstimatedTtlPolicy policy;
  policy.ObserveWrite("k", At(10));
  policy.ObserveWrite("k", At(10));  // zero gap must be ignored
  policy.ObserveWrite("k", At(110));
  EXPECT_NEAR(policy.EstimatedGap("k").seconds(), 100.0, 0.5);
}

}  // namespace
}  // namespace speedkit::ttl
