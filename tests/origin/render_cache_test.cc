// The origin's version-keyed render cache (the polyglot architecture's
// server-side cache tier): saves render time, can never serve stale (the
// key includes the content version).
#include <gtest/gtest.h>

#include "origin/origin_server.h"

namespace speedkit::origin {
namespace {

http::HttpRequest Get(std::string_view url) {
  return http::HttpRequest::Get(*http::Url::Parse(url));
}

class RenderCacheTest : public ::testing::Test {
 protected:
  RenderCacheTest()
      : ttl_policy_(Duration::Seconds(60)),
        server_(OriginConfig{}, &clock_, &store_, &ttl_policy_, nullptr) {
    store_.Put("p1", {{"price", 10.0}}, clock_.Now());
  }

  sim::SimClock clock_;
  storage::ObjectStore store_;
  ttl::FixedTtlPolicy ttl_policy_;
  OriginServer server_;
};

TEST_F(RenderCacheTest, FirstRenderChargesFullCost) {
  http::HttpResponse resp =
      server_.Handle(Get("https://shop.example.com/api/records/p1"));
  EXPECT_EQ(resp.server_time, OriginConfig{}.record_render_time);
  EXPECT_EQ(server_.stats().render_cache_misses, 1u);
  EXPECT_EQ(server_.stats().render_cache_hits, 0u);
}

TEST_F(RenderCacheTest, RepeatRenderIsCheap) {
  server_.Handle(Get("https://shop.example.com/api/records/p1"));
  http::HttpResponse resp =
      server_.Handle(Get("https://shop.example.com/api/records/p1"));
  EXPECT_EQ(resp.server_time, OriginConfig{}.render_cache_hit_time);
  EXPECT_EQ(server_.stats().render_cache_hits, 1u);
  EXPECT_GT(server_.stats().render_time_saved_us, 0);
}

TEST_F(RenderCacheTest, WriteInvalidatesByVersion) {
  server_.Handle(Get("https://shop.example.com/api/records/p1"));
  store_.Update("p1", {{"price", 12.0}}, clock_.Now());  // v2
  http::HttpResponse resp =
      server_.Handle(Get("https://shop.example.com/api/records/p1"));
  // New version: full render again — the cache cannot serve stale.
  EXPECT_EQ(resp.server_time, OriginConfig{}.record_render_time);
  EXPECT_EQ(resp.object_version, 2u);
  EXPECT_EQ(server_.stats().render_cache_misses, 2u);
}

TEST_F(RenderCacheTest, NotModifiedChargesValidationCost) {
  server_.Handle(Get("https://shop.example.com/api/records/p1"));
  http::HttpRequest req = Get("https://shop.example.com/api/records/p1");
  req.headers.Set("If-None-Match", "\"v1\"");
  http::HttpResponse resp = server_.Handle(req);
  ASSERT_TRUE(resp.IsNotModified());
  EXPECT_EQ(resp.server_time, OriginConfig{}.render_cache_hit_time);
}

TEST_F(RenderCacheTest, RouteClassesHaveDistinctCosts) {
  OriginConfig config;
  EXPECT_EQ(server_.Handle(Get("https://shop.example.com/assets/a.css"))
                .server_time,
            config.asset_render_time);
  EXPECT_EQ(server_.Handle(Get("https://shop.example.com/pages/home"))
                .server_time,
            config.shell_render_time);
  EXPECT_EQ(server_
                .Handle(Get(
                    "https://shop.example.com/api/fragments/recs?seg=s1"))
                .server_time,
            config.fragment_render_time);
}

TEST_F(RenderCacheTest, DisabledCacheAlwaysRenders) {
  OriginConfig config;
  config.render_cache_entries = 0;
  OriginServer server(config, &clock_, &store_, &ttl_policy_, nullptr);
  server.Handle(Get("https://shop.example.com/api/records/p1"));
  http::HttpResponse resp =
      server.Handle(Get("https://shop.example.com/api/records/p1"));
  EXPECT_EQ(resp.server_time, config.record_render_time);
  EXPECT_EQ(server.stats().render_cache_hits, 0u);
}

TEST_F(RenderCacheTest, QueriesUseResultVersionAsKey) {
  invalidation::Query q;
  q.id = "all";
  ASSERT_TRUE(server_.RegisterQuery(q).ok());
  std::string url = "https://shop.example.com/api/queries/all";
  server_.Handle(Get(url));
  EXPECT_EQ(server_.Handle(Get(url)).server_time,
            OriginConfig{}.render_cache_hit_time);
  // Unrelated-to-result write: version stays, cache stays warm... but p1
  // IS in "all" (matches everything), so this write invalidates.
  store_.Update("p1", {{"price", 99.0}}, clock_.Now());
  EXPECT_EQ(server_.Handle(Get(url)).server_time,
            OriginConfig{}.query_render_time);
}

}  // namespace
}  // namespace speedkit::origin
