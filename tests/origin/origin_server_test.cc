#include "origin/origin_server.h"

#include <gtest/gtest.h>

#include "coherence/sketch_publication.h"
#include "invalidation/pipeline.h"

namespace speedkit::origin {
namespace {

http::HttpRequest Get(std::string_view url) {
  return http::HttpRequest::Get(*http::Url::Parse(url));
}

class OriginServerTest : public ::testing::Test {
 protected:
  OriginServerTest()
      : ttl_policy_(Duration::Seconds(60)),
        sketch_(1000, 0.01),
        publication_(&sketch_),
        server_(OriginConfig{}, &clock_, &store_, &ttl_policy_,
                &publication_) {
    store_.Put("p1",
               {{"category", static_cast<int64_t>(1)}, {"price", 10.0}},
               clock_.Now());
    store_.Put("p2",
               {{"category", static_cast<int64_t>(2)}, {"price", 20.0}},
               clock_.Now());
    invalidation::Query q;
    q.id = "cat-1";
    q.conditions.push_back(
        {"category", invalidation::Op::kEq, static_cast<int64_t>(1)});
    EXPECT_TRUE(server_.RegisterQuery(q).ok());
  }

  sim::SimClock clock_;
  storage::ObjectStore store_;
  ttl::FixedTtlPolicy ttl_policy_;
  sketch::CacheSketch sketch_;
  coherence::SketchPublication publication_;
  OriginServer server_;
};

TEST_F(OriginServerTest, ServesRecordWithTtlAndETag) {
  http::HttpResponse resp =
      server_.Handle(Get("https://shop.example.com/api/records/p1"));
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(resp.object_version, 1u);
  EXPECT_EQ(resp.ETag(), "\"v1\"");
  EXPECT_NE(resp.body.find("\"id\":\"p1\""), std::string::npos);
  http::CacheControl cc = resp.GetCacheControl();
  EXPECT_TRUE(cc.is_public);
  EXPECT_EQ(cc.max_age.value(), Duration::Seconds(60));
}

TEST_F(OriginServerTest, MissingRecordIs404) {
  EXPECT_EQ(
      server_.Handle(Get("https://shop.example.com/api/records/ghost"))
          .status_code,
      404);
}

TEST_F(OriginServerTest, ConditionalRequestYields304) {
  http::HttpRequest req = Get("https://shop.example.com/api/records/p1");
  req.headers.Set("If-None-Match", "\"v1\"");
  http::HttpResponse resp = server_.Handle(req);
  EXPECT_TRUE(resp.IsNotModified());
  EXPECT_TRUE(resp.body.empty());
  EXPECT_EQ(server_.stats().not_modified, 1u);
  // Freshness headers are replayed for lifetime extension.
  EXPECT_EQ(resp.GetCacheControl().max_age.value(), Duration::Seconds(60));
}

TEST_F(OriginServerTest, StaleValidatorGetsFullResponse) {
  store_.Update("p1", {{"price", 11.0}}, clock_.Now());  // v2
  http::HttpRequest req = Get("https://shop.example.com/api/records/p1");
  req.headers.Set("If-None-Match", "\"v1\"");
  http::HttpResponse resp = server_.Handle(req);
  EXPECT_EQ(resp.status_code, 200);
  EXPECT_EQ(resp.object_version, 2u);
}

TEST_F(OriginServerTest, QueryResultListsMatchingRecords) {
  http::HttpResponse resp =
      server_.Handle(Get("https://shop.example.com/api/queries/cat-1"));
  EXPECT_TRUE(resp.ok());
  EXPECT_NE(resp.body.find("\"id\":\"p1\""), std::string::npos);
  EXPECT_EQ(resp.body.find("\"id\":\"p2\""), std::string::npos);
}

TEST_F(OriginServerTest, QueryResultVersionBumpsOnMembershipChange) {
  http::HttpResponse before =
      server_.Handle(Get("https://shop.example.com/api/queries/cat-1"));
  // Move p2 into category 1.
  store_.Update("p2", {{"category", static_cast<int64_t>(1)}}, clock_.Now());
  http::HttpResponse after =
      server_.Handle(Get("https://shop.example.com/api/queries/cat-1"));
  EXPECT_GT(after.object_version, before.object_version);
  EXPECT_NE(after.body.find("\"id\":\"p2\""), std::string::npos);
}

TEST_F(OriginServerTest, QueryResultUnaffectedByIrrelevantWrite) {
  http::HttpResponse before =
      server_.Handle(Get("https://shop.example.com/api/queries/cat-1"));
  store_.Update("p2", {{"price", 25.0}}, clock_.Now());  // stays in cat 2
  http::HttpResponse after =
      server_.Handle(Get("https://shop.example.com/api/queries/cat-1"));
  EXPECT_EQ(after.object_version, before.object_version);
}

TEST_F(OriginServerTest, DeleteRemovesFromQueryResult) {
  ASSERT_TRUE(store_.Delete("p1", clock_.Now()).ok());
  http::HttpResponse resp =
      server_.Handle(Get("https://shop.example.com/api/queries/cat-1"));
  EXPECT_EQ(resp.body.find("\"id\":\"p1\""), std::string::npos);
}

TEST_F(OriginServerTest, DuplicateQueryRegistrationFails) {
  invalidation::Query q;
  q.id = "cat-1";
  EXPECT_EQ(server_.RegisterQuery(q).code(), StatusCode::kAlreadyExists);
}

TEST_F(OriginServerTest, AssetsAreLongLivedAndSized) {
  http::HttpResponse resp =
      server_.Handle(Get("https://shop.example.com/assets/app.css"));
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(resp.body.size(), OriginConfig{}.asset_bytes);
  EXPECT_EQ(resp.GetCacheControl().max_age.value(),
            OriginConfig{}.asset_ttl);
}

TEST_F(OriginServerTest, ShellsUsePolicyTtlCappedByShellTtl) {
  // Fixture policy: 60s, below the 300s shell cap -> policy wins.
  http::HttpResponse resp =
      server_.Handle(Get("https://shop.example.com/pages/home"));
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(resp.GetCacheControl().max_age.value(), Duration::Seconds(60));
}

TEST_F(OriginServerTest, ShellTtlCapsLongPolicies) {
  ttl::FixedTtlPolicy long_policy(Duration::Seconds(86400));
  OriginServer server(OriginConfig{}, &clock_, &store_, &long_policy,
                      nullptr);
  http::HttpResponse resp =
      server.Handle(Get("https://shop.example.com/pages/home"));
  EXPECT_EQ(resp.GetCacheControl().max_age.value(),
            OriginConfig{}.shell_ttl);
}

TEST_F(OriginServerTest, NoCachePolicyMakesShellsUncacheable) {
  ttl::NoCachePolicy no_cache;
  OriginServer server(OriginConfig{}, &clock_, &store_, &no_cache, nullptr);
  http::HttpResponse resp =
      server.Handle(Get("https://shop.example.com/pages/home"));
  http::CacheControl cc = resp.GetCacheControl();
  EXPECT_TRUE(cc.no_cache);
  EXPECT_EQ(cc.max_age.value(), Duration::Zero());
}

TEST_F(OriginServerTest, SegmentFragmentIsCacheable) {
  http::HttpResponse resp = server_.Handle(
      Get("https://shop.example.com/api/fragments/recs?seg=seg-3"));
  EXPECT_TRUE(resp.ok());
  EXPECT_TRUE(resp.GetCacheControl().Storable(true));
  EXPECT_NE(resp.body.find("seg-3"), std::string::npos);
}

TEST_F(OriginServerTest, TemplateFragmentHasPlaceholders) {
  http::HttpResponse resp = server_.Handle(
      Get("https://shop.example.com/api/fragments/cart?tpl=1"));
  EXPECT_TRUE(resp.ok());
  EXPECT_NE(resp.body.find("{{name}}"), std::string::npos);
  EXPECT_TRUE(resp.GetCacheControl().Storable(true));
}

TEST_F(OriginServerTest, UserFragmentIsNeverCacheable) {
  http::HttpResponse resp = server_.Handle(
      Get("https://shop.example.com/api/fragments/cart?user=777"));
  EXPECT_TRUE(resp.ok());
  http::CacheControl cc = resp.GetCacheControl();
  EXPECT_TRUE(cc.no_store);
  EXPECT_FALSE(cc.Storable(false));
  EXPECT_NE(resp.body.find("777"), std::string::npos);
}

TEST_F(OriginServerTest, SketchEndpointServesSnapshot) {
  sketch_.ReportInvalidation("some-key", clock_.Now() + Duration::Seconds(60),
                             clock_.Now());
  http::HttpResponse resp =
      server_.Handle(Get("https://shop.example.com/sketch"));
  EXPECT_TRUE(resp.ok());
  EXPECT_TRUE(resp.GetCacheControl().no_store);
  auto filter = sketch::BloomFilter::Deserialize(resp.body);
  ASSERT_TRUE(filter.ok());
  EXPECT_TRUE(filter->MightContain("some-key"));
}

TEST_F(OriginServerTest, ServedResponsesFeedExpiryBook) {
  std::string key = "https://shop.example.com/api/records/p1";
  server_.Handle(Get(key));
  SimTime horizon = server_.expiry_book().LatestExpiry(key, clock_.Now());
  // TTL (60s) plus the stale-while-revalidate window (50% -> 30s).
  EXPECT_EQ(horizon, clock_.Now() + Duration::Seconds(90));
}

TEST_F(OriginServerTest, UnavailableReturns503) {
  server_.set_available(false);
  http::HttpResponse resp =
      server_.Handle(Get("https://shop.example.com/api/records/p1"));
  EXPECT_EQ(resp.status_code, 503);
  EXPECT_EQ(server_.stats().rejected_unavailable, 1u);
  server_.set_available(true);
  EXPECT_TRUE(
      server_.Handle(Get("https://shop.example.com/api/records/p1")).ok());
}

TEST_F(OriginServerTest, UnknownRouteIs404) {
  EXPECT_EQ(server_.Handle(Get("https://shop.example.com/nope")).status_code,
            404);
}

TEST_F(OriginServerTest, TtlObservationsFlowOnWrites) {
  // With an estimating policy, writes should register; here we just check
  // the query-version listener fires.
  uint64_t seen_version = 0;
  std::string seen_key;
  server_.SetQueryVersionListener(
      [&](const std::string& key, uint64_t version) {
        seen_key = key;
        seen_version = version;
      });
  store_.Update("p1", {{"price", 99.0}}, clock_.Now());
  EXPECT_EQ(seen_key, invalidation::QueryCacheKey("cat-1"));
  EXPECT_GT(seen_version, 1u);
}

}  // namespace
}  // namespace speedkit::origin
