// Ordered, limited query results at the origin (InvaliDB-style sorted
// queries): exact top-k maintenance under writes, with result versions
// bumping precisely when the visible slice changes.
#include <gtest/gtest.h>

#include "origin/origin_server.h"

namespace speedkit::origin {
namespace {

http::HttpRequest Get(std::string_view url) {
  return http::HttpRequest::Get(*http::Url::Parse(url));
}

class SortedQueryTest : public ::testing::Test {
 protected:
  SortedQueryTest()
      : ttl_policy_(Duration::Seconds(60)),
        server_(OriginConfig{}, &clock_, &store_, &ttl_policy_, nullptr) {
    // Five products in category 1 with distinct prices.
    for (int i = 0; i < 5; ++i) {
      store_.Put("p" + std::to_string(i),
                 {{"category", static_cast<int64_t>(1)},
                  {"price", 10.0 * (i + 1)}},  // p0=10 ... p4=50
                 clock_.Now());
    }
    invalidation::Query q;
    q.id = "cheapest3";
    q.conditions.push_back(
        {"category", invalidation::Op::kEq, static_cast<int64_t>(1)});
    q.order_by = "price";
    q.limit = 3;
    EXPECT_TRUE(server_.RegisterQuery(q).ok());
  }

  // Extracts the id sequence from the rendered result body.
  std::vector<std::string> ResultIds() {
    http::HttpResponse resp =
        server_.Handle(Get("https://shop.example.com/api/queries/cheapest3"));
    std::vector<std::string> ids;
    size_t pos = 0;
    while ((pos = resp.body.find("\"id\":\"", pos)) != std::string::npos) {
      pos += 6;
      size_t end = resp.body.find('"', pos);
      ids.push_back(resp.body.substr(pos, end - pos));
    }
    return ids;
  }

  uint64_t ResultVersion() {
    return server_
        .Handle(Get("https://shop.example.com/api/queries/cheapest3"))
        .object_version;
  }

  sim::SimClock clock_;
  storage::ObjectStore store_;
  ttl::FixedTtlPolicy ttl_policy_;
  OriginServer server_;
};

TEST_F(SortedQueryTest, InitialTopKInPriceOrder) {
  EXPECT_EQ(ResultIds(), (std::vector<std::string>{"p0", "p1", "p2"}));
}

TEST_F(SortedQueryTest, DisplacementIntoTopK) {
  uint64_t v = ResultVersion();
  // p4 (50 -> 5) becomes the cheapest.
  store_.Update("p4", {{"price", 5.0}}, clock_.Now());
  EXPECT_EQ(ResultIds(), (std::vector<std::string>{"p4", "p0", "p1"}));
  EXPECT_GT(ResultVersion(), v);
}

TEST_F(SortedQueryTest, WriteOutsideTopKDoesNotBumpVersion) {
  uint64_t v = ResultVersion();
  // p4 (rank 5) gets cheaper but stays outside the top 3.
  store_.Update("p4", {{"price", 45.0}}, clock_.Now());
  EXPECT_EQ(ResultVersion(), v);
  EXPECT_EQ(ResultIds(), (std::vector<std::string>{"p0", "p1", "p2"}));
}

TEST_F(SortedQueryTest, InPlaceChangeInsideTopKBumpsVersion) {
  uint64_t v = ResultVersion();
  // p1 stays rank 2 but its rendered price changes.
  store_.Update("p1", {{"price", 21.0}}, clock_.Now());
  EXPECT_EQ(ResultIds(), (std::vector<std::string>{"p0", "p1", "p2"}));
  EXPECT_GT(ResultVersion(), v);
}

TEST_F(SortedQueryTest, LeavingPredicatePullsUpSuccessor) {
  store_.Update("p0", {{"category", static_cast<int64_t>(9)}}, clock_.Now());
  EXPECT_EQ(ResultIds(), (std::vector<std::string>{"p1", "p2", "p3"}));
}

TEST_F(SortedQueryTest, DeleteRemovesFromSlice) {
  ASSERT_TRUE(store_.Delete("p1", clock_.Now()).ok());
  EXPECT_EQ(ResultIds(), (std::vector<std::string>{"p0", "p2", "p3"}));
}

TEST_F(SortedQueryTest, DescendingOrder) {
  invalidation::Query q;
  q.id = "priciest2";
  q.conditions.push_back(
      {"category", invalidation::Op::kEq, static_cast<int64_t>(1)});
  q.order_by = "price";
  q.descending = true;
  q.limit = 2;
  ASSERT_TRUE(server_.RegisterQuery(q).ok());
  http::HttpResponse resp =
      server_.Handle(Get("https://shop.example.com/api/queries/priciest2"));
  EXPECT_NE(resp.body.find("\"id\":\"p4\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"id\":\"p3\""), std::string::npos);
  EXPECT_EQ(resp.body.find("\"id\":\"p2\""), std::string::npos);
  EXPECT_LT(resp.body.find("\"id\":\"p4\""), resp.body.find("\"id\":\"p3\""));
}

TEST_F(SortedQueryTest, MissingSortFieldSortsFirst) {
  store_.Put("p9", {{"category", static_cast<int64_t>(1)}}, clock_.Now());
  EXPECT_EQ(ResultIds()[0], "p9");  // NULLS FIRST
}

TEST_F(SortedQueryTest, UnlimitedOrderedQueryReturnsAllSorted) {
  invalidation::Query q;
  q.id = "all-sorted";
  q.conditions.push_back(
      {"category", invalidation::Op::kEq, static_cast<int64_t>(1)});
  q.order_by = "price";
  ASSERT_TRUE(server_.RegisterQuery(q).ok());
  http::HttpResponse resp =
      server_.Handle(Get("https://shop.example.com/api/queries/all-sorted"));
  size_t p0 = resp.body.find("\"id\":\"p0\"");
  size_t p4 = resp.body.find("\"id\":\"p4\"");
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p4, std::string::npos);
  EXPECT_LT(p0, p4);
}

TEST_F(SortedQueryTest, TieBreakIsById) {
  store_.Put("pa", {{"category", static_cast<int64_t>(1)}, {"price", 10.0}},
             clock_.Now());
  // p0 and pa both cost 10: p0 < pa lexicographically.
  auto ids = ResultIds();
  ASSERT_GE(ids.size(), 2u);
  EXPECT_EQ(ids[0], "p0");
  EXPECT_EQ(ids[1], "pa");
}

TEST(SortedQueryToStringTest, MentionsOrderAndLimit) {
  invalidation::Query q;
  q.id = "x";
  q.order_by = "price";
  q.descending = true;
  q.limit = 10;
  std::string s = q.ToString();
  EXPECT_NE(s.find("ORDER BY price DESC"), std::string::npos);
  EXPECT_NE(s.find("LIMIT 10"), std::string::npos);
}

}  // namespace
}  // namespace speedkit::origin
