// End-to-end coherence for ordered, limited query results: a cached
// "cheapest 3" listing must reflect top-k displacement within Δ, through
// the full stack (origin materialization -> pipeline -> sketch -> client
// proxy), while writes that don't touch the visible slice cost nothing.
#include <gtest/gtest.h>

#include "core/stack.h"
#include "invalidation/pipeline.h"

namespace speedkit::core {
namespace {

class SortedQueryCoherenceTest : public ::testing::Test {
 protected:
  SortedQueryCoherenceTest() : stack_(MakeConfig()) {
    for (int i = 0; i < 6; ++i) {
      stack_.store().Put("p" + std::to_string(i),
                         {{"category", static_cast<int64_t>(1)},
                          {"price", 10.0 * (i + 1)}},
                         stack_.clock().Now());
    }
    invalidation::Query q;
    q.id = "cheapest3";
    q.conditions.push_back(
        {"category", invalidation::Op::kEq, static_cast<int64_t>(1)});
    q.order_by = "price";
    q.limit = 3;
    EXPECT_TRUE(stack_.origin().RegisterQuery(q).ok());
    EXPECT_TRUE(
        stack_.pipeline()->WatchQuery(q, invalidation::QueryCacheKey(q.id))
            .ok());
    stack_.Advance(Duration::Seconds(5));
    client_ = stack_.MakeClient(1);
  }

  static StackConfig MakeConfig() {
    StackConfig config;
    config.coherence.delta = Duration::Seconds(10);
    config.ttl_mode = TtlMode::kFixed;
    config.fixed_ttl = Duration::Seconds(300);
    return config;
  }

  std::string QueryUrl() { return invalidation::QueryCacheKey("cheapest3"); }

  SpeedKitStack stack_;
  std::unique_ptr<proxy::ClientProxy> client_;
};

TEST_F(SortedQueryCoherenceTest, DisplacementVisibleWithinDelta) {
  proxy::FetchResult first = client_->Fetch(QueryUrl());
  ASSERT_TRUE(first.response.ok());
  EXPECT_NE(first.response.body.find("\"id\":\"p0\""), std::string::npos);
  EXPECT_EQ(first.response.body.find("\"id\":\"p5\""), std::string::npos);

  // p5 (60 -> 1) becomes the cheapest: the cached listing is now stale.
  stack_.store().Update("p5", {{"price", 1.0}}, stack_.clock().Now());
  stack_.Advance(stack_.config().coherence.delta + Duration::Seconds(1));

  proxy::FetchResult second = client_->Fetch(QueryUrl());
  ASSERT_TRUE(second.response.ok());
  EXPECT_TRUE(second.sketch_bypass);
  EXPECT_GT(second.response.object_version, first.response.object_version);
  EXPECT_NE(second.response.body.find("\"id\":\"p5\""), std::string::npos);
  // p2 (rank 3 before) fell out of the slice.
  EXPECT_EQ(second.response.body.find("\"id\":\"p2\""), std::string::npos);
}

TEST_F(SortedQueryCoherenceTest, OutOfSliceWriteDoesNotChurnResult) {
  proxy::FetchResult first = client_->Fetch(QueryUrl());
  // p5 (rank 6) gets cheaper but stays far outside the top 3: the visible
  // slice is untouched, so the result version must not move.
  stack_.store().Update("p5", {{"price", 55.0}}, stack_.clock().Now());
  stack_.Advance(stack_.config().coherence.delta + Duration::Seconds(1));

  proxy::FetchResult second = client_->Fetch(QueryUrl());
  ASSERT_TRUE(second.response.ok());
  EXPECT_EQ(second.response.object_version, first.response.object_version);
  // The matcher is conservative (it cannot know the boundary), so the key
  // may be flagged and revalidated — but that costs a 304, not a body.
  if (second.sketch_bypass) {
    EXPECT_TRUE(second.revalidated);
  }
}

TEST_F(SortedQueryCoherenceTest, SliceStalenessIsDeltaBounded) {
  client_->Fetch(QueryUrl());
  stack_.store().Update("p5", {{"price", 1.0}}, stack_.clock().Now());

  // Poll the listing repeatedly; record staleness of every read.
  Duration max_staleness = Duration::Zero();
  for (int i = 0; i < 30; ++i) {
    stack_.Advance(Duration::Seconds(1));
    proxy::FetchResult r = client_->Fetch(QueryUrl());
    if (r.response.ok() && r.response.object_version > 0) {
      Duration staleness = stack_.staleness().RecordRead(
          QueryUrl(), r.response.object_version, stack_.clock().Now());
      max_staleness = std::max(max_staleness, staleness);
    }
  }
  EXPECT_LE(max_staleness, stack_.config().coherence.delta + Duration::Seconds(2));
}

}  // namespace
}  // namespace speedkit::core
