// End-to-end verification of the paper's compliance claim: with the
// GDPR-mode client proxy, no personal data ever crosses the device
// boundary — across full personalized page loads, many users, and every
// block scope — while the legacy personalization baseline demonstrably
// leaks identity on every user-scoped fetch.
#include <gtest/gtest.h>

#include "core/page_load.h"
#include "core/stack.h"

namespace speedkit::core {
namespace {

struct UserSetup {
  std::unique_ptr<personalization::PiiVault> vault;
  std::unique_ptr<personalization::BoundaryAuditor> auditor;
  std::unique_ptr<proxy::ClientProxy> client;
};

UserSetup MakeUser(SpeedKitStack& stack, uint64_t user_id, bool gdpr_mode) {
  UserSetup setup;
  setup.vault = std::make_unique<personalization::PiiVault>(user_id);
  setup.vault->Put("name", "User Number " + std::to_string(user_id));
  setup.vault->Put("email",
                   "user" + std::to_string(user_id) + "@example.org");
  setup.vault->Put("cart", std::to_string(user_id % 5) + " items pending");
  setup.auditor = std::make_unique<personalization::BoundaryAuditor>();
  setup.auditor->RegisterVault(*setup.vault);
  proxy::ProxyConfig pc = stack.DefaultProxyConfig();
  pc.gdpr_mode = gdpr_mode;
  setup.client = stack.MakeClient(pc, user_id, setup.auditor.get());
  setup.client->AttachVault(setup.vault.get());
  return setup;
}

personalization::PageTemplate PersonalizedPage() {
  personalization::PageTemplate page;
  page.url = "https://shop.example.com/pages/home";
  page.blocks = {
      {"hero", personalization::BlockScope::kStatic, 4096},
      {"recs", personalization::BlockScope::kSegment, 2048},
      {"greeting", personalization::BlockScope::kUser, 512},
      {"cart-preview", personalization::BlockScope::kUser, 1024},
  };
  return page;
}

TEST(GdprInvariantTest, NoPiiEgressAcrossManyUsersAndPages) {
  StackConfig config;
  SpeedKitStack stack(config);
  workload::CatalogConfig cconfig;
  cconfig.num_products = 100;
  workload::Catalog catalog(cconfig, Pcg32(1));
  catalog.Populate(&stack.store(), stack.clock().Now());
  for (int c = 0; c < catalog.num_categories(); ++c) {
    ASSERT_TRUE(stack.origin().RegisterQuery(catalog.CategoryQuery(c)).ok());
  }

  personalization::PageTemplate tpl = PersonalizedPage();
  personalization::Segmenter segmenter(16);
  PageLoader loader;

  // User ids chosen adversarially: numerically small and large, so their
  // decimal forms have every chance to collide with URL content.
  for (uint64_t user_id : {101ull, 777ull, 31337ull, 999999999ull}) {
    UserSetup user = MakeUser(stack, user_id, /*gdpr_mode=*/true);
    for (size_t rank : {0u, 5u, 9u}) {
      PageSpec page = MakeProductPage(catalog, rank, 4, 2);
      page.page_template = &tpl;
      page.segmenter = &segmenter;
      PageLoadResult r = loader.Load(*user.client, page);
      EXPECT_EQ(r.errors, 0);
    }
    EXPECT_EQ(user.auditor->violations(), 0u)
        << "user " << user_id << " leaked: "
        << (user.auditor->samples().empty()
                ? ""
                : user.auditor->samples()[0].url);
    EXPECT_GT(user.auditor->inspected(), 0u);
  }
}

TEST(GdprInvariantTest, UserBlocksStillPersonalizedOnDevice) {
  StackConfig config;
  SpeedKitStack stack(config);
  UserSetup user = MakeUser(stack, 4242, /*gdpr_mode=*/true);
  personalization::PageTemplate tpl = PersonalizedPage();
  personalization::Segmenter segmenter(16);
  proxy::BlockResult r =
      user.client->FetchBlock(tpl, tpl.blocks[2], segmenter);
  EXPECT_TRUE(r.rendered_on_device);
  // The personalization really happened: vault data is in the content...
  EXPECT_NE(r.content.find("User Number 4242"), std::string::npos);
  // ...yet nothing crossed the boundary.
  EXPECT_EQ(user.auditor->violations(), 0u);
}

TEST(GdprInvariantTest, LegacyModeLeaksOnEveryUserBlock) {
  StackConfig config;
  SpeedKitStack stack(config);
  UserSetup user = MakeUser(stack, 5555, /*gdpr_mode=*/false);
  personalization::PageTemplate tpl = PersonalizedPage();
  personalization::Segmenter segmenter(16);
  user.client->FetchBlock(tpl, tpl.blocks[2], segmenter);
  user.client->FetchBlock(tpl, tpl.blocks[3], segmenter);
  EXPECT_GE(user.auditor->violations(), 2u);
}

TEST(GdprInvariantTest, SegmentIdsCarryBoundedIdentity) {
  // A 16-segment policy reveals 4 bits; assert the accounting is exposed so
  // deployments can check k-anonymity targets.
  personalization::Segmenter segmenter(16);
  EXPECT_DOUBLE_EQ(segmenter.IdentityBits(), 4.0);
  // And the segment id itself must not contain the user id.
  std::string seg = segmenter.SegmentFor(123456789);
  EXPECT_EQ(seg.find("123456789"), std::string::npos);
}

TEST(GdprInvariantTest, GdprModeCachesTemplatesAcrossUsers) {
  // The GDPR design is not just compliant, it is *fast*: the anonymous
  // template is fetched once and shared; the second user's user-block
  // fetch hits a cache.
  StackConfig config;
  SpeedKitStack stack(config);
  personalization::PageTemplate tpl = PersonalizedPage();
  personalization::Segmenter segmenter(16);

  UserSetup a = MakeUser(stack, 1001, true);
  UserSetup b = MakeUser(stack, 1002, true);
  a.client->FetchBlock(tpl, tpl.blocks[2], segmenter);
  proxy::BlockResult r = b.client->FetchBlock(tpl, tpl.blocks[2], segmenter);
  EXPECT_TRUE(r.source == proxy::ServedFrom::kEdgeCache ||
              r.source == proxy::ServedFrom::kBrowserCache ||
              r.source == proxy::ServedFrom::kOrigin);
  // Same-edge users share the template via the CDN.
  if (stack.cdn().RouteFor(1001) == stack.cdn().RouteFor(1002)) {
    EXPECT_EQ(r.source, proxy::ServedFrom::kEdgeCache);
  }
}

}  // namespace
}  // namespace speedkit::core
