// End-to-end verification of the paper's central coherence claim:
// with the Cache Sketch enabled, no client ever observes a value that was
// overwritten more than Δ + purge-propagation ago — for any Δ — while a
// plain fixed-TTL CDN suffers staleness up to its full TTL.
#include <gtest/gtest.h>

#include "core/stack.h"
#include "core/traffic.h"

namespace speedkit::core {
namespace {

workload::CatalogConfig SmallCatalog() {
  workload::CatalogConfig config;
  config.num_products = 200;
  config.num_categories = 10;
  return config;
}

struct RunOutcome {
  StalenessReport staleness;
  uint64_t page_views = 0;
};

RunOutcome RunWorkload(SystemVariant variant, Duration delta,
                       Duration fixed_ttl) {
  StackConfig config;
  config.variant = variant;
  config.coherence.delta = delta;
  config.ttl_mode = TtlMode::kFixed;  // make the staleness bound exact
  config.fixed_ttl = fixed_ttl;
  config.seed = 1234;
  SpeedKitStack stack(config);
  workload::Catalog catalog(SmallCatalog(), Pcg32(1));
  catalog.Populate(&stack.store(), stack.clock().Now());
  for (int c = 0; c < catalog.num_categories(); ++c) {
    EXPECT_TRUE(stack.origin().RegisterQuery(catalog.CategoryQuery(c)).ok());
    EXPECT_TRUE(stack.pipeline() == nullptr ||
                stack.pipeline()
                    ->WatchQuery(catalog.CategoryQuery(c),
                                 catalog.CategoryUrl(c))
                    .ok());
  }
  TrafficConfig traffic;
  traffic.num_clients = 15;
  traffic.duration = Duration::Minutes(10);
  traffic.writes_per_sec = 3.0;  // aggressive: hot objects churn
  traffic.write_skew = 0.9;
  TrafficSimulation sim(&stack, &catalog, traffic);
  TrafficResult result = sim.Run();
  return RunOutcome{stack.staleness().report(), result.page_views};
}

// Δ-atomicity sweep: the observed max staleness must stay within
// Δ + purge propagation (we allow 2s of slack for purge fan-out jitter).
class DeltaAtomicityProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeltaAtomicityProperty, MaxStalenessBoundedByDelta) {
  Duration delta = Duration::Seconds(GetParam());
  RunOutcome outcome = RunWorkload(SystemVariant::kSpeedKit, delta,
                                   /*fixed_ttl=*/Duration::Seconds(120));
  ASSERT_GT(outcome.page_views, 100u);
  EXPECT_LE(outcome.staleness.max_staleness, delta + Duration::Seconds(2))
      << "delta=" << GetParam()
      << "s, observed=" << outcome.staleness.max_staleness.ToString();
}

INSTANTIATE_TEST_SUITE_P(DeltaSweep, DeltaAtomicityProperty,
                         ::testing::Values(5, 15, 30, 60));

TEST(DeltaAtomicityTest, FixedTtlCdnViolatesTightBound) {
  // The baseline with 120s TTLs and no invalidation must show staleness
  // far beyond the 5s bound Speed Kit holds under identical traffic.
  RunOutcome outcome =
      RunWorkload(SystemVariant::kFixedTtlCdn, Duration::Seconds(5),
                  Duration::Seconds(120));
  EXPECT_GT(outcome.staleness.max_staleness, Duration::Seconds(10));
  EXPECT_GT(outcome.staleness.stale_reads, 0u);
}

TEST(DeltaAtomicityTest, SpeedKitHasFarFewerStaleReadsThanFixedTtl) {
  RunOutcome sk = RunWorkload(SystemVariant::kSpeedKit, Duration::Seconds(30),
                              Duration::Seconds(120));
  RunOutcome cdn =
      RunWorkload(SystemVariant::kFixedTtlCdn, Duration::Seconds(30),
                  Duration::Seconds(120));
  EXPECT_LT(sk.staleness.StaleFraction(), cdn.staleness.StaleFraction());
}

}  // namespace
}  // namespace speedkit::core
