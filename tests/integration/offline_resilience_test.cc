// Field-experience claim: Speed Kit keeps previously-visited pages usable
// through origin outages (offline mode), where a vanilla site hard-fails.
#include <gtest/gtest.h>

#include "core/page_load.h"
#include "core/stack.h"

namespace speedkit::core {
namespace {

class OfflineResilienceTest : public ::testing::Test {
 protected:
  OfflineResilienceTest()
      : stack_(StackConfig{}), catalog_(CatalogCfg(), Pcg32(1)) {
    catalog_.Populate(&stack_.store(), stack_.clock().Now());
    for (int c = 0; c < catalog_.num_categories(); ++c) {
      EXPECT_TRUE(
          stack_.origin().RegisterQuery(catalog_.CategoryQuery(c)).ok());
      EXPECT_TRUE(stack_.pipeline()
                      ->WatchQuery(catalog_.CategoryQuery(c),
                                   catalog_.CategoryUrl(c))
                      .ok());
    }
  }

  static workload::CatalogConfig CatalogCfg() {
    workload::CatalogConfig config;
    config.num_products = 50;
    return config;
  }

  SpeedKitStack stack_;
  workload::Catalog catalog_;
};

TEST_F(OfflineResilienceTest, VisitedPagesSurviveOutage) {
  auto client = stack_.MakeClient(1);
  PageLoader loader;
  PageSpec page = MakeProductPage(catalog_, 3, 4, 2);
  PageLoadResult warmup = loader.Load(*client, page);
  ASSERT_EQ(warmup.errors, 0);

  // TTLs expire, then the origin goes down.
  stack_.Advance(Duration::Minutes(90));
  stack_.origin().set_available(false);

  PageLoadResult offline = loader.Load(*client, page);
  EXPECT_EQ(offline.errors, 0);
  EXPECT_EQ(offline.served_from_cache, offline.resources);
}

TEST_F(OfflineResilienceTest, UnvisitedPagesStillFailDuringOutage) {
  auto client = stack_.MakeClient(1);
  stack_.origin().set_available(false);
  PageLoader loader;
  PageLoadResult r = loader.Load(*client, MakeProductPage(catalog_, 3, 4, 2));
  EXPECT_GT(r.errors, 0);
}

TEST_F(OfflineResilienceTest, VanillaClientFailsWhereSpeedKitServes) {
  proxy::ProxyConfig vanilla = stack_.DefaultProxyConfig();
  vanilla.enabled = false;
  auto vanilla_client = stack_.MakeClient(vanilla, 2);
  auto sk_client = stack_.MakeClient(3);

  std::string url = catalog_.ProductUrl(7);
  vanilla_client->Fetch(url);
  sk_client->Fetch(url);

  stack_.Advance(Duration::Minutes(90));  // both browser copies stale
  stack_.origin().set_available(false);

  proxy::FetchResult vanilla_r = vanilla_client->Fetch(url);
  proxy::FetchResult sk_r = sk_client->Fetch(url);
  EXPECT_EQ(vanilla_r.response.status_code, 503);
  EXPECT_TRUE(sk_r.response.ok());
  EXPECT_EQ(sk_r.source, proxy::ServedFrom::kOfflineCache);
}

TEST_F(OfflineResilienceTest, RecoveryResumesNormalOperation) {
  auto client = stack_.MakeClient(1);
  std::string url = catalog_.ProductUrl(3);
  client->Fetch(url);
  stack_.origin().set_available(false);
  stack_.Advance(Duration::Minutes(90));
  client->Fetch(url);  // offline serve
  stack_.origin().set_available(true);
  stack_.Advance(Duration::Seconds(1));
  proxy::FetchResult r = client->Fetch(url);
  EXPECT_TRUE(r.response.ok());
  EXPECT_NE(r.source, proxy::ServedFrom::kOfflineCache);
}

TEST_F(OfflineResilienceTest, WritesDuringOutageAreSeenAfterRecovery) {
  auto client = stack_.MakeClient(1);
  std::string url = catalog_.ProductUrl(3);
  proxy::FetchResult first = client->Fetch(url);
  uint64_t v1 = first.response.object_version;

  stack_.origin().set_available(false);
  Pcg32 rng(5);
  stack_.store().Update(catalog_.ProductId(3),
                        catalog_.PriceUpdate(3, rng), stack_.clock().Now());
  proxy::FetchResult offline = client->Fetch(url);
  // Offline mode knowingly serves the old version...
  EXPECT_EQ(offline.response.object_version, v1);

  stack_.origin().set_available(true);
  stack_.Advance(stack_.config().coherence.delta + Duration::Seconds(1));
  proxy::FetchResult recovered = client->Fetch(url);
  // ...but after recovery the sketch forces revalidation to the new one.
  EXPECT_GT(recovered.response.object_version, v1);
}

}  // namespace
}  // namespace speedkit::core
