#include "personalization/pii.h"

#include <gtest/gtest.h>

namespace speedkit::personalization {
namespace {

http::HttpRequest Request(std::string_view url) {
  return http::HttpRequest::Get(*http::Url::Parse(url));
}

TEST(PiiFieldTest, KnownFieldsDetected) {
  EXPECT_TRUE(IsPiiFieldName("email"));
  EXPECT_TRUE(IsPiiFieldName("EMAIL"));
  EXPECT_TRUE(IsPiiFieldName("user_id"));
  EXPECT_TRUE(IsPiiFieldName("cart"));
  EXPECT_FALSE(IsPiiFieldName("price"));
  EXPECT_FALSE(IsPiiFieldName("category"));
}

TEST(PiiVaultTest, PutGet) {
  PiiVault vault(42);
  vault.Put("name", "Ada");
  EXPECT_EQ(vault.Get("name").value(), "Ada");
  EXPECT_FALSE(vault.Get("email").has_value());
  EXPECT_EQ(vault.user_id(), 42u);
}

TEST(PiiVaultTest, RenderLocallySubstitutesPlaceholders) {
  PiiVault vault(42);
  vault.Put("name", "Ada");
  vault.Put("cart", "3 items");
  EXPECT_EQ(vault.RenderLocally("Hello {{name}}, cart: {{ cart }}!"),
            "Hello Ada, cart: 3 items!");
}

TEST(PiiVaultTest, RenderLocallyUnknownFieldsEmpty) {
  PiiVault vault(42);
  EXPECT_EQ(vault.RenderLocally("Hi {{ghost}}!"), "Hi !");
}

TEST(PiiVaultTest, RenderLocallyMalformedTemplate) {
  PiiVault vault(42);
  vault.Put("name", "Ada");
  // Unclosed placeholder: rest is passed through verbatim.
  EXPECT_EQ(vault.RenderLocally("Hi {{name"), "Hi {{name");
  EXPECT_EQ(vault.RenderLocally("no placeholders"), "no placeholders");
  EXPECT_EQ(vault.RenderLocally(""), "");
}

TEST(BoundaryAuditorTest, CleanRequestPasses) {
  BoundaryAuditor auditor;
  auditor.RegisterSensitive("ada@example.org");
  EXPECT_TRUE(auditor.Inspect(Request("https://shop.example.com/p/1")));
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_EQ(auditor.inspected(), 1u);
}

TEST(BoundaryAuditorTest, DetectsTokenInUrl) {
  BoundaryAuditor auditor;
  auditor.RegisterSensitive("user-777");
  EXPECT_FALSE(
      auditor.Inspect(Request("https://shop.example.com/rec?id=user-777")));
  EXPECT_EQ(auditor.violations(), 1u);
  ASSERT_EQ(auditor.samples().size(), 1u);
  EXPECT_EQ(auditor.samples()[0].location, "url");
  EXPECT_EQ(auditor.samples()[0].leaked_token, "user-777");
}

TEST(BoundaryAuditorTest, DetectsTokenInHeaderAndBody) {
  BoundaryAuditor auditor;
  auditor.RegisterSensitive("secret-token");
  http::HttpRequest req = Request("https://shop.example.com/x");
  req.headers.Set("Cookie", "sess=secret-token");
  EXPECT_FALSE(auditor.Inspect(req));
  EXPECT_EQ(auditor.samples()[0].location, "header");

  http::HttpRequest req2 = Request("https://shop.example.com/x");
  req2.body = "payload with secret-token inside";
  EXPECT_FALSE(auditor.Inspect(req2));
  EXPECT_EQ(auditor.samples()[1].location, "body");
}

TEST(BoundaryAuditorTest, RegisterVaultCoversUserIdAndFields) {
  PiiVault vault(777);
  vault.Put("email", "ada@example.org");
  BoundaryAuditor auditor;
  auditor.RegisterVault(vault);
  EXPECT_FALSE(
      auditor.Inspect(Request("https://shop.example.com/f?user=777")));
  EXPECT_FALSE(auditor.Inspect(
      Request("https://shop.example.com/f?mail=ada@example.org")));
}

TEST(BoundaryAuditorTest, ShortTokensIgnored) {
  BoundaryAuditor auditor;
  auditor.RegisterSensitive("ab");  // too short: would match everywhere
  EXPECT_TRUE(auditor.Inspect(Request("https://shop.example.com/abc")));
}

TEST(BoundaryAuditorTest, DuplicateRegistrationIsIdempotent) {
  BoundaryAuditor auditor;
  auditor.RegisterSensitive("token-x");
  auditor.RegisterSensitive("token-x");
  EXPECT_FALSE(auditor.Inspect(Request("https://a.com/?t=token-x")));
  EXPECT_EQ(auditor.violations(), 1u);  // one hit, not two
}

}  // namespace
}  // namespace speedkit::personalization
