#include "personalization/dynamic_block.h"

#include <gtest/gtest.h>

#include "personalization/segmentation.h"

namespace speedkit::personalization {
namespace {

PageTemplate MakePage() {
  PageTemplate page;
  page.url = "https://shop.example.com/pages/product";
  page.shell_bytes = 1000;
  page.blocks = {
      {"header", BlockScope::kStatic, 100},
      {"recs", BlockScope::kSegment, 200},
      {"cart", BlockScope::kUser, 300},
  };
  return page;
}

TEST(DynamicBlockTest, ScopeNames) {
  EXPECT_EQ(BlockScopeName(BlockScope::kStatic), "static");
  EXPECT_EQ(BlockScopeName(BlockScope::kSegment), "segment");
  EXPECT_EQ(BlockScopeName(BlockScope::kUser), "user");
}

TEST(DynamicBlockTest, ByteAccounting) {
  PageTemplate page = MakePage();
  EXPECT_EQ(page.CacheableBytes(), 1000u + 100 + 200);
  EXPECT_EQ(page.UserScopedBytes(), 300u);
  EXPECT_EQ(page.TotalBytes(), 1600u);
}

TEST(DynamicBlockTest, FragmentKeysDistinguishBlocks) {
  PageTemplate page = MakePage();
  std::string a = FragmentCacheKey(page.url, "header", BlockScope::kStatic);
  std::string b = FragmentCacheKey(page.url, "footer", BlockScope::kStatic);
  EXPECT_NE(a, b);
}

TEST(DynamicBlockTest, SegmentKeysIncludeSegmentId) {
  PageTemplate page = MakePage();
  std::string s1 =
      FragmentCacheKey(page.url, "recs", BlockScope::kSegment, "seg-1");
  std::string s2 =
      FragmentCacheKey(page.url, "recs", BlockScope::kSegment, "seg-2");
  EXPECT_NE(s1, s2);
  EXPECT_NE(s1.find("seg-1"), std::string::npos);
}

TEST(SegmenterTest, AssignmentIsStable) {
  Segmenter seg(10);
  for (uint64_t user = 0; user < 100; ++user) {
    EXPECT_EQ(seg.SegmentFor(user), seg.SegmentFor(user));
  }
}

TEST(SegmenterTest, AssignmentSpreadsUsers) {
  Segmenter seg(4);
  std::map<std::string, int> counts;
  for (uint64_t user = 0; user < 4000; ++user) counts[seg.SegmentFor(user)]++;
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [id, c] : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(SegmenterTest, SingleSegmentIsAnonymous) {
  Segmenter seg(1);
  EXPECT_EQ(seg.SegmentFor(1), seg.SegmentFor(999));
  EXPECT_EQ(seg.IdentityBits(), 0.0);
}

TEST(SegmenterTest, IdentityBitsGrowWithSegments) {
  EXPECT_DOUBLE_EQ(Segmenter(2).IdentityBits(), 1.0);
  EXPECT_DOUBLE_EQ(Segmenter(1024).IdentityBits(), 10.0);
}

TEST(SegmenterTest, CustomAssignment) {
  Segmenter seg(2, [](uint64_t user) {
    return user % 2 == 0 ? std::string("even") : std::string("odd");
  });
  EXPECT_EQ(seg.SegmentFor(4), "even");
  EXPECT_EQ(seg.SegmentFor(5), "odd");
}

}  // namespace
}  // namespace speedkit::personalization
