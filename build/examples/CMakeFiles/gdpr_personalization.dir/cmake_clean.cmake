file(REMOVE_RECURSE
  "CMakeFiles/gdpr_personalization.dir/gdpr_personalization.cpp.o"
  "CMakeFiles/gdpr_personalization.dir/gdpr_personalization.cpp.o.d"
  "gdpr_personalization"
  "gdpr_personalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdpr_personalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
