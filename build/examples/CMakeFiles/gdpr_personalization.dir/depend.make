# Empty dependencies file for gdpr_personalization.
# This may be replaced when dependencies are built.
