# Empty dependencies file for ecommerce_storefront.
# This may be replaced when dependencies are built.
