file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_storefront.dir/ecommerce_storefront.cpp.o"
  "CMakeFiles/ecommerce_storefront.dir/ecommerce_storefront.cpp.o.d"
  "ecommerce_storefront"
  "ecommerce_storefront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_storefront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
