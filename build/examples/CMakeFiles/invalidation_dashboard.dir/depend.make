# Empty dependencies file for invalidation_dashboard.
# This may be replaced when dependencies are built.
