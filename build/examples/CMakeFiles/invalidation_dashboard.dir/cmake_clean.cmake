file(REMOVE_RECURSE
  "CMakeFiles/invalidation_dashboard.dir/invalidation_dashboard.cpp.o"
  "CMakeFiles/invalidation_dashboard.dir/invalidation_dashboard.cpp.o.d"
  "invalidation_dashboard"
  "invalidation_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invalidation_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
