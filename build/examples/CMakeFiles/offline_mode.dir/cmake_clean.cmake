file(REMOVE_RECURSE
  "CMakeFiles/offline_mode.dir/offline_mode.cpp.o"
  "CMakeFiles/offline_mode.dir/offline_mode.cpp.o.d"
  "offline_mode"
  "offline_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
