# Empty compiler generated dependencies file for offline_mode.
# This may be replaced when dependencies are built.
