# Empty dependencies file for speedkit_integration_tests.
# This may be replaced when dependencies are built.
