file(REMOVE_RECURSE
  "CMakeFiles/speedkit_integration_tests.dir/integration/delta_atomicity_test.cc.o"
  "CMakeFiles/speedkit_integration_tests.dir/integration/delta_atomicity_test.cc.o.d"
  "CMakeFiles/speedkit_integration_tests.dir/integration/gdpr_invariant_test.cc.o"
  "CMakeFiles/speedkit_integration_tests.dir/integration/gdpr_invariant_test.cc.o.d"
  "CMakeFiles/speedkit_integration_tests.dir/integration/offline_resilience_test.cc.o"
  "CMakeFiles/speedkit_integration_tests.dir/integration/offline_resilience_test.cc.o.d"
  "CMakeFiles/speedkit_integration_tests.dir/integration/sorted_query_coherence_test.cc.o"
  "CMakeFiles/speedkit_integration_tests.dir/integration/sorted_query_coherence_test.cc.o.d"
  "speedkit_integration_tests"
  "speedkit_integration_tests.pdb"
  "speedkit_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
