file(REMOVE_RECURSE
  "CMakeFiles/speedkit_cache_tests.dir/cache/cdn_test.cc.o"
  "CMakeFiles/speedkit_cache_tests.dir/cache/cdn_test.cc.o.d"
  "CMakeFiles/speedkit_cache_tests.dir/cache/http_cache_test.cc.o"
  "CMakeFiles/speedkit_cache_tests.dir/cache/http_cache_test.cc.o.d"
  "CMakeFiles/speedkit_cache_tests.dir/cache/lru_cache_test.cc.o"
  "CMakeFiles/speedkit_cache_tests.dir/cache/lru_cache_test.cc.o.d"
  "CMakeFiles/speedkit_cache_tests.dir/cache/lru_fuzz_test.cc.o"
  "CMakeFiles/speedkit_cache_tests.dir/cache/lru_fuzz_test.cc.o.d"
  "speedkit_cache_tests"
  "speedkit_cache_tests.pdb"
  "speedkit_cache_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_cache_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
