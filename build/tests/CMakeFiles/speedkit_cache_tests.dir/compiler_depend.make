# Empty compiler generated dependencies file for speedkit_cache_tests.
# This may be replaced when dependencies are built.
