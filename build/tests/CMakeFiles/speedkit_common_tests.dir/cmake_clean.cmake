file(REMOVE_RECURSE
  "CMakeFiles/speedkit_common_tests.dir/common/hash_test.cc.o"
  "CMakeFiles/speedkit_common_tests.dir/common/hash_test.cc.o.d"
  "CMakeFiles/speedkit_common_tests.dir/common/histogram_test.cc.o"
  "CMakeFiles/speedkit_common_tests.dir/common/histogram_test.cc.o.d"
  "CMakeFiles/speedkit_common_tests.dir/common/random_test.cc.o"
  "CMakeFiles/speedkit_common_tests.dir/common/random_test.cc.o.d"
  "CMakeFiles/speedkit_common_tests.dir/common/sim_time_test.cc.o"
  "CMakeFiles/speedkit_common_tests.dir/common/sim_time_test.cc.o.d"
  "CMakeFiles/speedkit_common_tests.dir/common/status_test.cc.o"
  "CMakeFiles/speedkit_common_tests.dir/common/status_test.cc.o.d"
  "CMakeFiles/speedkit_common_tests.dir/common/strings_test.cc.o"
  "CMakeFiles/speedkit_common_tests.dir/common/strings_test.cc.o.d"
  "CMakeFiles/speedkit_common_tests.dir/common/time_series_test.cc.o"
  "CMakeFiles/speedkit_common_tests.dir/common/time_series_test.cc.o.d"
  "speedkit_common_tests"
  "speedkit_common_tests.pdb"
  "speedkit_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
