# Empty compiler generated dependencies file for speedkit_common_tests.
# This may be replaced when dependencies are built.
