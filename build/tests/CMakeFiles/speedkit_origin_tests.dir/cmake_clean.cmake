file(REMOVE_RECURSE
  "CMakeFiles/speedkit_origin_tests.dir/origin/origin_server_test.cc.o"
  "CMakeFiles/speedkit_origin_tests.dir/origin/origin_server_test.cc.o.d"
  "CMakeFiles/speedkit_origin_tests.dir/origin/render_cache_test.cc.o"
  "CMakeFiles/speedkit_origin_tests.dir/origin/render_cache_test.cc.o.d"
  "CMakeFiles/speedkit_origin_tests.dir/origin/sorted_query_test.cc.o"
  "CMakeFiles/speedkit_origin_tests.dir/origin/sorted_query_test.cc.o.d"
  "speedkit_origin_tests"
  "speedkit_origin_tests.pdb"
  "speedkit_origin_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_origin_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
