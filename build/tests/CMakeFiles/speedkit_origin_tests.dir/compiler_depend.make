# Empty compiler generated dependencies file for speedkit_origin_tests.
# This may be replaced when dependencies are built.
