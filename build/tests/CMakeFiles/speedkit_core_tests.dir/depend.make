# Empty dependencies file for speedkit_core_tests.
# This may be replaced when dependencies are built.
