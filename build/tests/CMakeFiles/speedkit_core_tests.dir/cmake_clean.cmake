file(REMOVE_RECURSE
  "CMakeFiles/speedkit_core_tests.dir/core/page_load_test.cc.o"
  "CMakeFiles/speedkit_core_tests.dir/core/page_load_test.cc.o.d"
  "CMakeFiles/speedkit_core_tests.dir/core/replay_test.cc.o"
  "CMakeFiles/speedkit_core_tests.dir/core/replay_test.cc.o.d"
  "CMakeFiles/speedkit_core_tests.dir/core/stack_test.cc.o"
  "CMakeFiles/speedkit_core_tests.dir/core/stack_test.cc.o.d"
  "CMakeFiles/speedkit_core_tests.dir/core/staleness_test.cc.o"
  "CMakeFiles/speedkit_core_tests.dir/core/staleness_test.cc.o.d"
  "CMakeFiles/speedkit_core_tests.dir/core/traffic_test.cc.o"
  "CMakeFiles/speedkit_core_tests.dir/core/traffic_test.cc.o.d"
  "speedkit_core_tests"
  "speedkit_core_tests.pdb"
  "speedkit_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
