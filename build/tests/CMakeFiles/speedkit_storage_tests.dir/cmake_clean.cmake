file(REMOVE_RECURSE
  "CMakeFiles/speedkit_storage_tests.dir/storage/object_store_test.cc.o"
  "CMakeFiles/speedkit_storage_tests.dir/storage/object_store_test.cc.o.d"
  "speedkit_storage_tests"
  "speedkit_storage_tests.pdb"
  "speedkit_storage_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_storage_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
