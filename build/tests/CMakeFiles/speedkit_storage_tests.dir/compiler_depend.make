# Empty compiler generated dependencies file for speedkit_storage_tests.
# This may be replaced when dependencies are built.
