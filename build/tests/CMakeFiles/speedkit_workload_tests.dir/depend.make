# Empty dependencies file for speedkit_workload_tests.
# This may be replaced when dependencies are built.
