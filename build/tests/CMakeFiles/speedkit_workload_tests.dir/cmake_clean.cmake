file(REMOVE_RECURSE
  "CMakeFiles/speedkit_workload_tests.dir/workload/trace_test.cc.o"
  "CMakeFiles/speedkit_workload_tests.dir/workload/trace_test.cc.o.d"
  "CMakeFiles/speedkit_workload_tests.dir/workload/workload_test.cc.o"
  "CMakeFiles/speedkit_workload_tests.dir/workload/workload_test.cc.o.d"
  "speedkit_workload_tests"
  "speedkit_workload_tests.pdb"
  "speedkit_workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
