file(REMOVE_RECURSE
  "CMakeFiles/speedkit_sim_tests.dir/sim/event_queue_test.cc.o"
  "CMakeFiles/speedkit_sim_tests.dir/sim/event_queue_test.cc.o.d"
  "CMakeFiles/speedkit_sim_tests.dir/sim/network_test.cc.o"
  "CMakeFiles/speedkit_sim_tests.dir/sim/network_test.cc.o.d"
  "speedkit_sim_tests"
  "speedkit_sim_tests.pdb"
  "speedkit_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
