# Empty dependencies file for speedkit_sim_tests.
# This may be replaced when dependencies are built.
