# Empty compiler generated dependencies file for speedkit_invalidation_tests.
# This may be replaced when dependencies are built.
