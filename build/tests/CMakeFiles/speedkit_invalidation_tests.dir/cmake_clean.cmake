file(REMOVE_RECURSE
  "CMakeFiles/speedkit_invalidation_tests.dir/invalidation/expiry_book_test.cc.o"
  "CMakeFiles/speedkit_invalidation_tests.dir/invalidation/expiry_book_test.cc.o.d"
  "CMakeFiles/speedkit_invalidation_tests.dir/invalidation/matcher_fuzz_test.cc.o"
  "CMakeFiles/speedkit_invalidation_tests.dir/invalidation/matcher_fuzz_test.cc.o.d"
  "CMakeFiles/speedkit_invalidation_tests.dir/invalidation/pipeline_test.cc.o"
  "CMakeFiles/speedkit_invalidation_tests.dir/invalidation/pipeline_test.cc.o.d"
  "CMakeFiles/speedkit_invalidation_tests.dir/invalidation/predicate_test.cc.o"
  "CMakeFiles/speedkit_invalidation_tests.dir/invalidation/predicate_test.cc.o.d"
  "CMakeFiles/speedkit_invalidation_tests.dir/invalidation/query_matcher_test.cc.o"
  "CMakeFiles/speedkit_invalidation_tests.dir/invalidation/query_matcher_test.cc.o.d"
  "speedkit_invalidation_tests"
  "speedkit_invalidation_tests.pdb"
  "speedkit_invalidation_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_invalidation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
