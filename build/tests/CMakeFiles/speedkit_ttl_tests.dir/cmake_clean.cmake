file(REMOVE_RECURSE
  "CMakeFiles/speedkit_ttl_tests.dir/ttl/ttl_policy_test.cc.o"
  "CMakeFiles/speedkit_ttl_tests.dir/ttl/ttl_policy_test.cc.o.d"
  "speedkit_ttl_tests"
  "speedkit_ttl_tests.pdb"
  "speedkit_ttl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_ttl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
