# Empty compiler generated dependencies file for speedkit_ttl_tests.
# This may be replaced when dependencies are built.
