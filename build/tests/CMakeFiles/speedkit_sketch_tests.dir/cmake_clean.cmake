file(REMOVE_RECURSE
  "CMakeFiles/speedkit_sketch_tests.dir/sketch/bloom_filter_test.cc.o"
  "CMakeFiles/speedkit_sketch_tests.dir/sketch/bloom_filter_test.cc.o.d"
  "CMakeFiles/speedkit_sketch_tests.dir/sketch/cache_sketch_test.cc.o"
  "CMakeFiles/speedkit_sketch_tests.dir/sketch/cache_sketch_test.cc.o.d"
  "CMakeFiles/speedkit_sketch_tests.dir/sketch/client_sketch_test.cc.o"
  "CMakeFiles/speedkit_sketch_tests.dir/sketch/client_sketch_test.cc.o.d"
  "CMakeFiles/speedkit_sketch_tests.dir/sketch/counting_bloom_test.cc.o"
  "CMakeFiles/speedkit_sketch_tests.dir/sketch/counting_bloom_test.cc.o.d"
  "CMakeFiles/speedkit_sketch_tests.dir/sketch/serialization_fuzz_test.cc.o"
  "CMakeFiles/speedkit_sketch_tests.dir/sketch/serialization_fuzz_test.cc.o.d"
  "speedkit_sketch_tests"
  "speedkit_sketch_tests.pdb"
  "speedkit_sketch_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_sketch_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
