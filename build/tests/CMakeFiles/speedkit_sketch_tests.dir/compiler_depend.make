# Empty compiler generated dependencies file for speedkit_sketch_tests.
# This may be replaced when dependencies are built.
