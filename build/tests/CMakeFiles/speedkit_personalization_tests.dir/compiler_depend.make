# Empty compiler generated dependencies file for speedkit_personalization_tests.
# This may be replaced when dependencies are built.
