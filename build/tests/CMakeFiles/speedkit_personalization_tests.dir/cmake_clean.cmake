file(REMOVE_RECURSE
  "CMakeFiles/speedkit_personalization_tests.dir/personalization/dynamic_block_test.cc.o"
  "CMakeFiles/speedkit_personalization_tests.dir/personalization/dynamic_block_test.cc.o.d"
  "CMakeFiles/speedkit_personalization_tests.dir/personalization/pii_test.cc.o"
  "CMakeFiles/speedkit_personalization_tests.dir/personalization/pii_test.cc.o.d"
  "speedkit_personalization_tests"
  "speedkit_personalization_tests.pdb"
  "speedkit_personalization_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_personalization_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
