# Empty compiler generated dependencies file for speedkit_proxy_tests.
# This may be replaced when dependencies are built.
