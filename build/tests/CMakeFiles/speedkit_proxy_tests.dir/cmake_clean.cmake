file(REMOVE_RECURSE
  "CMakeFiles/speedkit_proxy_tests.dir/proxy/client_proxy_test.cc.o"
  "CMakeFiles/speedkit_proxy_tests.dir/proxy/client_proxy_test.cc.o.d"
  "CMakeFiles/speedkit_proxy_tests.dir/proxy/swr_and_optimize_test.cc.o"
  "CMakeFiles/speedkit_proxy_tests.dir/proxy/swr_and_optimize_test.cc.o.d"
  "speedkit_proxy_tests"
  "speedkit_proxy_tests.pdb"
  "speedkit_proxy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_proxy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
