file(REMOVE_RECURSE
  "CMakeFiles/speedkit_http_tests.dir/http/cache_control_test.cc.o"
  "CMakeFiles/speedkit_http_tests.dir/http/cache_control_test.cc.o.d"
  "CMakeFiles/speedkit_http_tests.dir/http/headers_test.cc.o"
  "CMakeFiles/speedkit_http_tests.dir/http/headers_test.cc.o.d"
  "CMakeFiles/speedkit_http_tests.dir/http/message_test.cc.o"
  "CMakeFiles/speedkit_http_tests.dir/http/message_test.cc.o.d"
  "CMakeFiles/speedkit_http_tests.dir/http/url_test.cc.o"
  "CMakeFiles/speedkit_http_tests.dir/http/url_test.cc.o.d"
  "speedkit_http_tests"
  "speedkit_http_tests.pdb"
  "speedkit_http_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_http_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
