# Empty dependencies file for speedkit_http_tests.
# This may be replaced when dependencies are built.
