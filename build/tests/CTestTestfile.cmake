# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/speedkit_common_tests[1]_include.cmake")
include("/root/repo/build/tests/speedkit_http_tests[1]_include.cmake")
include("/root/repo/build/tests/speedkit_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/speedkit_sketch_tests[1]_include.cmake")
include("/root/repo/build/tests/speedkit_ttl_tests[1]_include.cmake")
include("/root/repo/build/tests/speedkit_storage_tests[1]_include.cmake")
include("/root/repo/build/tests/speedkit_cache_tests[1]_include.cmake")
include("/root/repo/build/tests/speedkit_invalidation_tests[1]_include.cmake")
include("/root/repo/build/tests/speedkit_personalization_tests[1]_include.cmake")
include("/root/repo/build/tests/speedkit_workload_tests[1]_include.cmake")
include("/root/repo/build/tests/speedkit_origin_tests[1]_include.cmake")
include("/root/repo/build/tests/speedkit_proxy_tests[1]_include.cmake")
include("/root/repo/build/tests/speedkit_core_tests[1]_include.cmake")
include("/root/repo/build/tests/speedkit_integration_tests[1]_include.cmake")
