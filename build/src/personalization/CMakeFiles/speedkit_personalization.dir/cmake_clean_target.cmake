file(REMOVE_RECURSE
  "libspeedkit_personalization.a"
)
