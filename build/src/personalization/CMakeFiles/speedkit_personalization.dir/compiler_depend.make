# Empty compiler generated dependencies file for speedkit_personalization.
# This may be replaced when dependencies are built.
