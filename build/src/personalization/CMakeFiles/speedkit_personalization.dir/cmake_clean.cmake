file(REMOVE_RECURSE
  "CMakeFiles/speedkit_personalization.dir/dynamic_block.cc.o"
  "CMakeFiles/speedkit_personalization.dir/dynamic_block.cc.o.d"
  "CMakeFiles/speedkit_personalization.dir/pii.cc.o"
  "CMakeFiles/speedkit_personalization.dir/pii.cc.o.d"
  "CMakeFiles/speedkit_personalization.dir/segmentation.cc.o"
  "CMakeFiles/speedkit_personalization.dir/segmentation.cc.o.d"
  "libspeedkit_personalization.a"
  "libspeedkit_personalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_personalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
