# Empty dependencies file for speedkit_common.
# This may be replaced when dependencies are built.
