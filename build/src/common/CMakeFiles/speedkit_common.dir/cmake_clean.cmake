file(REMOVE_RECURSE
  "CMakeFiles/speedkit_common.dir/hash.cc.o"
  "CMakeFiles/speedkit_common.dir/hash.cc.o.d"
  "CMakeFiles/speedkit_common.dir/histogram.cc.o"
  "CMakeFiles/speedkit_common.dir/histogram.cc.o.d"
  "CMakeFiles/speedkit_common.dir/random.cc.o"
  "CMakeFiles/speedkit_common.dir/random.cc.o.d"
  "CMakeFiles/speedkit_common.dir/sim_time.cc.o"
  "CMakeFiles/speedkit_common.dir/sim_time.cc.o.d"
  "CMakeFiles/speedkit_common.dir/status.cc.o"
  "CMakeFiles/speedkit_common.dir/status.cc.o.d"
  "CMakeFiles/speedkit_common.dir/strings.cc.o"
  "CMakeFiles/speedkit_common.dir/strings.cc.o.d"
  "CMakeFiles/speedkit_common.dir/time_series.cc.o"
  "CMakeFiles/speedkit_common.dir/time_series.cc.o.d"
  "libspeedkit_common.a"
  "libspeedkit_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
