file(REMOVE_RECURSE
  "libspeedkit_common.a"
)
