file(REMOVE_RECURSE
  "CMakeFiles/speedkit_workload.dir/catalog.cc.o"
  "CMakeFiles/speedkit_workload.dir/catalog.cc.o.d"
  "CMakeFiles/speedkit_workload.dir/session.cc.o"
  "CMakeFiles/speedkit_workload.dir/session.cc.o.d"
  "CMakeFiles/speedkit_workload.dir/trace.cc.o"
  "CMakeFiles/speedkit_workload.dir/trace.cc.o.d"
  "CMakeFiles/speedkit_workload.dir/write_process.cc.o"
  "CMakeFiles/speedkit_workload.dir/write_process.cc.o.d"
  "CMakeFiles/speedkit_workload.dir/zipf.cc.o"
  "CMakeFiles/speedkit_workload.dir/zipf.cc.o.d"
  "libspeedkit_workload.a"
  "libspeedkit_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
