
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/catalog.cc" "src/workload/CMakeFiles/speedkit_workload.dir/catalog.cc.o" "gcc" "src/workload/CMakeFiles/speedkit_workload.dir/catalog.cc.o.d"
  "/root/repo/src/workload/session.cc" "src/workload/CMakeFiles/speedkit_workload.dir/session.cc.o" "gcc" "src/workload/CMakeFiles/speedkit_workload.dir/session.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/speedkit_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/speedkit_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/write_process.cc" "src/workload/CMakeFiles/speedkit_workload.dir/write_process.cc.o" "gcc" "src/workload/CMakeFiles/speedkit_workload.dir/write_process.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/workload/CMakeFiles/speedkit_workload.dir/zipf.cc.o" "gcc" "src/workload/CMakeFiles/speedkit_workload.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/speedkit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/invalidation/CMakeFiles/speedkit_invalidation.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/speedkit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/speedkit_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/speedkit_http.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/speedkit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/speedkit_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
