# Empty compiler generated dependencies file for speedkit_workload.
# This may be replaced when dependencies are built.
