file(REMOVE_RECURSE
  "libspeedkit_workload.a"
)
