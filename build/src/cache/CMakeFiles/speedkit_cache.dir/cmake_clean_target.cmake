file(REMOVE_RECURSE
  "libspeedkit_cache.a"
)
