file(REMOVE_RECURSE
  "CMakeFiles/speedkit_cache.dir/cdn.cc.o"
  "CMakeFiles/speedkit_cache.dir/cdn.cc.o.d"
  "CMakeFiles/speedkit_cache.dir/http_cache.cc.o"
  "CMakeFiles/speedkit_cache.dir/http_cache.cc.o.d"
  "libspeedkit_cache.a"
  "libspeedkit_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
