# Empty compiler generated dependencies file for speedkit_cache.
# This may be replaced when dependencies are built.
