file(REMOVE_RECURSE
  "CMakeFiles/speedkit_http.dir/cache_control.cc.o"
  "CMakeFiles/speedkit_http.dir/cache_control.cc.o.d"
  "CMakeFiles/speedkit_http.dir/headers.cc.o"
  "CMakeFiles/speedkit_http.dir/headers.cc.o.d"
  "CMakeFiles/speedkit_http.dir/message.cc.o"
  "CMakeFiles/speedkit_http.dir/message.cc.o.d"
  "CMakeFiles/speedkit_http.dir/url.cc.o"
  "CMakeFiles/speedkit_http.dir/url.cc.o.d"
  "libspeedkit_http.a"
  "libspeedkit_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
