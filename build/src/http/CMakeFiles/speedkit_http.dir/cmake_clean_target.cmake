file(REMOVE_RECURSE
  "libspeedkit_http.a"
)
