# Empty compiler generated dependencies file for speedkit_http.
# This may be replaced when dependencies are built.
