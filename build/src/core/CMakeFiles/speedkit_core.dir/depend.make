# Empty dependencies file for speedkit_core.
# This may be replaced when dependencies are built.
