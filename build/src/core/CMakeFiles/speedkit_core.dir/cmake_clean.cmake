file(REMOVE_RECURSE
  "CMakeFiles/speedkit_core.dir/bounce.cc.o"
  "CMakeFiles/speedkit_core.dir/bounce.cc.o.d"
  "CMakeFiles/speedkit_core.dir/page_load.cc.o"
  "CMakeFiles/speedkit_core.dir/page_load.cc.o.d"
  "CMakeFiles/speedkit_core.dir/replay.cc.o"
  "CMakeFiles/speedkit_core.dir/replay.cc.o.d"
  "CMakeFiles/speedkit_core.dir/stack.cc.o"
  "CMakeFiles/speedkit_core.dir/stack.cc.o.d"
  "CMakeFiles/speedkit_core.dir/staleness.cc.o"
  "CMakeFiles/speedkit_core.dir/staleness.cc.o.d"
  "CMakeFiles/speedkit_core.dir/traffic.cc.o"
  "CMakeFiles/speedkit_core.dir/traffic.cc.o.d"
  "libspeedkit_core.a"
  "libspeedkit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
