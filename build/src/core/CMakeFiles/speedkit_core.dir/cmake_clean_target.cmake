file(REMOVE_RECURSE
  "libspeedkit_core.a"
)
