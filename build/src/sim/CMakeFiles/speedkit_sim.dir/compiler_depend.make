# Empty compiler generated dependencies file for speedkit_sim.
# This may be replaced when dependencies are built.
