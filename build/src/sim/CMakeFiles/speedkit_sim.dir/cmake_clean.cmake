file(REMOVE_RECURSE
  "CMakeFiles/speedkit_sim.dir/event_queue.cc.o"
  "CMakeFiles/speedkit_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/speedkit_sim.dir/network.cc.o"
  "CMakeFiles/speedkit_sim.dir/network.cc.o.d"
  "libspeedkit_sim.a"
  "libspeedkit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
