file(REMOVE_RECURSE
  "libspeedkit_sim.a"
)
