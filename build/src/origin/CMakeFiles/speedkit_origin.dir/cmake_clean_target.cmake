file(REMOVE_RECURSE
  "libspeedkit_origin.a"
)
