# Empty compiler generated dependencies file for speedkit_origin.
# This may be replaced when dependencies are built.
