file(REMOVE_RECURSE
  "CMakeFiles/speedkit_origin.dir/origin_server.cc.o"
  "CMakeFiles/speedkit_origin.dir/origin_server.cc.o.d"
  "libspeedkit_origin.a"
  "libspeedkit_origin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_origin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
