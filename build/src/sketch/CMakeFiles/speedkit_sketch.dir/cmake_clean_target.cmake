file(REMOVE_RECURSE
  "libspeedkit_sketch.a"
)
