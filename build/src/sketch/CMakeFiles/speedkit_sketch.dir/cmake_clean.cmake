file(REMOVE_RECURSE
  "CMakeFiles/speedkit_sketch.dir/bloom_filter.cc.o"
  "CMakeFiles/speedkit_sketch.dir/bloom_filter.cc.o.d"
  "CMakeFiles/speedkit_sketch.dir/cache_sketch.cc.o"
  "CMakeFiles/speedkit_sketch.dir/cache_sketch.cc.o.d"
  "CMakeFiles/speedkit_sketch.dir/client_sketch.cc.o"
  "CMakeFiles/speedkit_sketch.dir/client_sketch.cc.o.d"
  "CMakeFiles/speedkit_sketch.dir/counting_bloom.cc.o"
  "CMakeFiles/speedkit_sketch.dir/counting_bloom.cc.o.d"
  "libspeedkit_sketch.a"
  "libspeedkit_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
