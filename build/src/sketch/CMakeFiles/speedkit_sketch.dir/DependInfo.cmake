
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/bloom_filter.cc" "src/sketch/CMakeFiles/speedkit_sketch.dir/bloom_filter.cc.o" "gcc" "src/sketch/CMakeFiles/speedkit_sketch.dir/bloom_filter.cc.o.d"
  "/root/repo/src/sketch/cache_sketch.cc" "src/sketch/CMakeFiles/speedkit_sketch.dir/cache_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/speedkit_sketch.dir/cache_sketch.cc.o.d"
  "/root/repo/src/sketch/client_sketch.cc" "src/sketch/CMakeFiles/speedkit_sketch.dir/client_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/speedkit_sketch.dir/client_sketch.cc.o.d"
  "/root/repo/src/sketch/counting_bloom.cc" "src/sketch/CMakeFiles/speedkit_sketch.dir/counting_bloom.cc.o" "gcc" "src/sketch/CMakeFiles/speedkit_sketch.dir/counting_bloom.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/speedkit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
