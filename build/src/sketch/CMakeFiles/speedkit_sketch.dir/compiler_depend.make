# Empty compiler generated dependencies file for speedkit_sketch.
# This may be replaced when dependencies are built.
