# Empty dependencies file for speedkit_ttl.
# This may be replaced when dependencies are built.
