file(REMOVE_RECURSE
  "CMakeFiles/speedkit_ttl.dir/ttl_policy.cc.o"
  "CMakeFiles/speedkit_ttl.dir/ttl_policy.cc.o.d"
  "libspeedkit_ttl.a"
  "libspeedkit_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
