file(REMOVE_RECURSE
  "libspeedkit_ttl.a"
)
