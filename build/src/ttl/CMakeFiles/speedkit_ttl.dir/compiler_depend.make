# Empty compiler generated dependencies file for speedkit_ttl.
# This may be replaced when dependencies are built.
