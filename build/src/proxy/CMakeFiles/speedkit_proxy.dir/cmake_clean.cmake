file(REMOVE_RECURSE
  "CMakeFiles/speedkit_proxy.dir/client_proxy.cc.o"
  "CMakeFiles/speedkit_proxy.dir/client_proxy.cc.o.d"
  "libspeedkit_proxy.a"
  "libspeedkit_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
