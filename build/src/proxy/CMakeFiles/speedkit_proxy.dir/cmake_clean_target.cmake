file(REMOVE_RECURSE
  "libspeedkit_proxy.a"
)
