# Empty dependencies file for speedkit_proxy.
# This may be replaced when dependencies are built.
