
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/invalidation/expiry_book.cc" "src/invalidation/CMakeFiles/speedkit_invalidation.dir/expiry_book.cc.o" "gcc" "src/invalidation/CMakeFiles/speedkit_invalidation.dir/expiry_book.cc.o.d"
  "/root/repo/src/invalidation/pipeline.cc" "src/invalidation/CMakeFiles/speedkit_invalidation.dir/pipeline.cc.o" "gcc" "src/invalidation/CMakeFiles/speedkit_invalidation.dir/pipeline.cc.o.d"
  "/root/repo/src/invalidation/predicate.cc" "src/invalidation/CMakeFiles/speedkit_invalidation.dir/predicate.cc.o" "gcc" "src/invalidation/CMakeFiles/speedkit_invalidation.dir/predicate.cc.o.d"
  "/root/repo/src/invalidation/query_matcher.cc" "src/invalidation/CMakeFiles/speedkit_invalidation.dir/query_matcher.cc.o" "gcc" "src/invalidation/CMakeFiles/speedkit_invalidation.dir/query_matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/speedkit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/speedkit_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/speedkit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/speedkit_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/speedkit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/speedkit_http.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
