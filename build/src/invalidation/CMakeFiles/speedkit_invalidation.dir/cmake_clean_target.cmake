file(REMOVE_RECURSE
  "libspeedkit_invalidation.a"
)
