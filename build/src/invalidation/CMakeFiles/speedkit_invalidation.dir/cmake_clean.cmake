file(REMOVE_RECURSE
  "CMakeFiles/speedkit_invalidation.dir/expiry_book.cc.o"
  "CMakeFiles/speedkit_invalidation.dir/expiry_book.cc.o.d"
  "CMakeFiles/speedkit_invalidation.dir/pipeline.cc.o"
  "CMakeFiles/speedkit_invalidation.dir/pipeline.cc.o.d"
  "CMakeFiles/speedkit_invalidation.dir/predicate.cc.o"
  "CMakeFiles/speedkit_invalidation.dir/predicate.cc.o.d"
  "CMakeFiles/speedkit_invalidation.dir/query_matcher.cc.o"
  "CMakeFiles/speedkit_invalidation.dir/query_matcher.cc.o.d"
  "libspeedkit_invalidation.a"
  "libspeedkit_invalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_invalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
