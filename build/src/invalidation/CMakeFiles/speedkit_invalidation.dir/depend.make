# Empty dependencies file for speedkit_invalidation.
# This may be replaced when dependencies are built.
