# Empty dependencies file for speedkit_storage.
# This may be replaced when dependencies are built.
