file(REMOVE_RECURSE
  "CMakeFiles/speedkit_storage.dir/object_store.cc.o"
  "CMakeFiles/speedkit_storage.dir/object_store.cc.o.d"
  "CMakeFiles/speedkit_storage.dir/record.cc.o"
  "CMakeFiles/speedkit_storage.dir/record.cc.o.d"
  "libspeedkit_storage.a"
  "libspeedkit_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedkit_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
