file(REMOVE_RECURSE
  "libspeedkit_storage.a"
)
