# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("http")
subdirs("sim")
subdirs("sketch")
subdirs("ttl")
subdirs("storage")
subdirs("cache")
subdirs("invalidation")
subdirs("personalization")
subdirs("workload")
subdirs("origin")
subdirs("proxy")
subdirs("core")
