file(REMOVE_RECURSE
  "CMakeFiles/skm_sim.dir/speedkit_sim.cc.o"
  "CMakeFiles/skm_sim.dir/speedkit_sim.cc.o.d"
  "speedkit-sim"
  "speedkit-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
