# Empty dependencies file for skm_sim.
# This may be replaced when dependencies are built.
