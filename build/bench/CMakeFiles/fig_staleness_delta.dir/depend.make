# Empty dependencies file for fig_staleness_delta.
# This may be replaced when dependencies are built.
