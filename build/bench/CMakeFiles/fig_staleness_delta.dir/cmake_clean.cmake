file(REMOVE_RECURSE
  "CMakeFiles/fig_staleness_delta.dir/fig_staleness_delta.cc.o"
  "CMakeFiles/fig_staleness_delta.dir/fig_staleness_delta.cc.o.d"
  "fig_staleness_delta"
  "fig_staleness_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_staleness_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
