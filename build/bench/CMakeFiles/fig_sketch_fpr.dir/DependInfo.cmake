
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig_sketch_fpr.cc" "bench/CMakeFiles/fig_sketch_fpr.dir/fig_sketch_fpr.cc.o" "gcc" "bench/CMakeFiles/fig_sketch_fpr.dir/fig_sketch_fpr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/speedkit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/speedkit_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/origin/CMakeFiles/speedkit_origin.dir/DependInfo.cmake"
  "/root/repo/build/src/personalization/CMakeFiles/speedkit_personalization.dir/DependInfo.cmake"
  "/root/repo/build/src/ttl/CMakeFiles/speedkit_ttl.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/speedkit_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/invalidation/CMakeFiles/speedkit_invalidation.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/speedkit_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/speedkit_http.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/speedkit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/speedkit_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/speedkit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/speedkit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
