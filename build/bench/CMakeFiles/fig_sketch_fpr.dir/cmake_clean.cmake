file(REMOVE_RECURSE
  "CMakeFiles/fig_sketch_fpr.dir/fig_sketch_fpr.cc.o"
  "CMakeFiles/fig_sketch_fpr.dir/fig_sketch_fpr.cc.o.d"
  "fig_sketch_fpr"
  "fig_sketch_fpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_sketch_fpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
