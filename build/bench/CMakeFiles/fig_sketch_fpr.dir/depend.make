# Empty dependencies file for fig_sketch_fpr.
# This may be replaced when dependencies are built.
