file(REMOVE_RECURSE
  "CMakeFiles/fig_pageload_ab.dir/fig_pageload_ab.cc.o"
  "CMakeFiles/fig_pageload_ab.dir/fig_pageload_ab.cc.o.d"
  "fig_pageload_ab"
  "fig_pageload_ab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_pageload_ab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
