# Empty compiler generated dependencies file for fig_pageload_ab.
# This may be replaced when dependencies are built.
