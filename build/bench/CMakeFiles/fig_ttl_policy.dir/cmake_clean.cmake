file(REMOVE_RECURSE
  "CMakeFiles/fig_ttl_policy.dir/fig_ttl_policy.cc.o"
  "CMakeFiles/fig_ttl_policy.dir/fig_ttl_policy.cc.o.d"
  "fig_ttl_policy"
  "fig_ttl_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_ttl_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
