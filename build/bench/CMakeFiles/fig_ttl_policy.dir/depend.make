# Empty dependencies file for fig_ttl_policy.
# This may be replaced when dependencies are built.
