file(REMOVE_RECURSE
  "CMakeFiles/tbl_sketch_traffic.dir/tbl_sketch_traffic.cc.o"
  "CMakeFiles/tbl_sketch_traffic.dir/tbl_sketch_traffic.cc.o.d"
  "tbl_sketch_traffic"
  "tbl_sketch_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_sketch_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
