# Empty compiler generated dependencies file for tbl_sketch_traffic.
# This may be replaced when dependencies are built.
