# Empty compiler generated dependencies file for fig_hit_layers.
# This may be replaced when dependencies are built.
