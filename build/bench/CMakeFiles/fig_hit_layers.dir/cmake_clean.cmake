file(REMOVE_RECURSE
  "CMakeFiles/fig_hit_layers.dir/fig_hit_layers.cc.o"
  "CMakeFiles/fig_hit_layers.dir/fig_hit_layers.cc.o.d"
  "fig_hit_layers"
  "fig_hit_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_hit_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
