file(REMOVE_RECURSE
  "CMakeFiles/fig_baselines.dir/fig_baselines.cc.o"
  "CMakeFiles/fig_baselines.dir/fig_baselines.cc.o.d"
  "fig_baselines"
  "fig_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
