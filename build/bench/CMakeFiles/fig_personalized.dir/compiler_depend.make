# Empty compiler generated dependencies file for fig_personalized.
# This may be replaced when dependencies are built.
