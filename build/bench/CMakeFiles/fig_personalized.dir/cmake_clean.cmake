file(REMOVE_RECURSE
  "CMakeFiles/fig_personalized.dir/fig_personalized.cc.o"
  "CMakeFiles/fig_personalized.dir/fig_personalized.cc.o.d"
  "fig_personalized"
  "fig_personalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_personalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
