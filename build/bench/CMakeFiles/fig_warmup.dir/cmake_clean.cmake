file(REMOVE_RECURSE
  "CMakeFiles/fig_warmup.dir/fig_warmup.cc.o"
  "CMakeFiles/fig_warmup.dir/fig_warmup.cc.o.d"
  "fig_warmup"
  "fig_warmup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
