# Empty compiler generated dependencies file for fig_warmup.
# This may be replaced when dependencies are built.
