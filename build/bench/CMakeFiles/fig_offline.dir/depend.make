# Empty dependencies file for fig_offline.
# This may be replaced when dependencies are built.
