file(REMOVE_RECURSE
  "CMakeFiles/fig_offline.dir/fig_offline.cc.o"
  "CMakeFiles/fig_offline.dir/fig_offline.cc.o.d"
  "fig_offline"
  "fig_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
