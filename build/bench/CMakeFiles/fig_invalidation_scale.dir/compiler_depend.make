# Empty compiler generated dependencies file for fig_invalidation_scale.
# This may be replaced when dependencies are built.
