file(REMOVE_RECURSE
  "CMakeFiles/fig_invalidation_scale.dir/fig_invalidation_scale.cc.o"
  "CMakeFiles/fig_invalidation_scale.dir/fig_invalidation_scale.cc.o.d"
  "fig_invalidation_scale"
  "fig_invalidation_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_invalidation_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
